// The fixed corpus behind the committed dpzip golden vectors
// (tests/golden/dpzip/*.bin). Shared by the regeneration tool
// (tools/dpzip_golden_gen.cc) and the stability test
// (tests/dpzip_golden_test.cc) so the two can never drift apart.
//
// Every case is a pure function of its (pattern, size, seed) triple plus
// the codec configuration, so the corpus is reproducible on any host. If
// you change the dpzip bitstream ON PURPOSE, regenerate with
//   build/tools/dpzip_golden_gen tests/golden/dpzip
// and commit the new .bin files alongside the encoder change.

#ifndef TESTS_GOLDEN_DPZIP_CORPUS_H_
#define TESTS_GOLDEN_DPZIP_CORPUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace golden {

enum class Pattern : uint8_t {
  kRatio,       // GenerateWithRatio(ratio, size, seed)
  kRandom,      // incompressible: seeded uniform bytes (raw-bypass path)
  kRunLength,   // long single-byte runs (max match lengths, distance 1)
};

struct GoldenCase {
  const char* name;  // vector file is <name>.bin
  Pattern pattern;
  size_t size;
  uint64_t seed;
  double ratio;               // kRatio only
  int level;                  // DpzipLz77ConfigForLevel
  DpzipEntropyMode entropy;
};

inline std::vector<GoldenCase> Corpus() {
  return {
      {"empty", Pattern::kRatio, 0, 1, 0.5, 1, DpzipEntropyMode::kHuffman},
      {"tiny_1b", Pattern::kRandom, 1, 2, 0, 1, DpzipEntropyMode::kHuffman},
      {"ratio20_4k", Pattern::kRatio, 4096, 101, 0.20, 1, DpzipEntropyMode::kHuffman},
      {"ratio45_16k", Pattern::kRatio, 16384, 102, 0.45, 1, DpzipEntropyMode::kHuffman},
      {"ratio80_64k", Pattern::kRatio, 65536, 103, 0.80, 1, DpzipEntropyMode::kHuffman},
      {"random_4k", Pattern::kRandom, 4096, 104, 0, 1, DpzipEntropyMode::kHuffman},
      {"runlength_8k", Pattern::kRunLength, 8192, 105, 0, 1, DpzipEntropyMode::kHuffman},
      {"level3_ratio45_16k", Pattern::kRatio, 16384, 102, 0.45, 3,
       DpzipEntropyMode::kHuffman},
      {"fse_ratio45_16k", Pattern::kRatio, 16384, 102, 0.45, 1, DpzipEntropyMode::kFse},
  };
}

inline std::vector<uint8_t> GenerateInput(const GoldenCase& c) {
  switch (c.pattern) {
    case Pattern::kRatio:
      return GenerateWithRatio(c.ratio, c.size, c.seed);
    case Pattern::kRandom: {
      Rng rng(c.seed);
      std::vector<uint8_t> data(c.size);
      for (uint8_t& b : data) {
        b = rng.NextByte();
      }
      return data;
    }
    case Pattern::kRunLength: {
      Rng rng(c.seed);
      std::vector<uint8_t> data;
      data.reserve(c.size);
      while (data.size() < c.size) {
        uint8_t value = rng.NextByte();
        size_t run = 1 + rng.Uniform(300);
        for (size_t i = 0; i < run && data.size() < c.size; ++i) {
          data.push_back(value);
        }
      }
      return data;
    }
  }
  return {};
}

inline DpzipCodec MakeCaseCodec(const GoldenCase& c) {
  DpzipCodecConfig config;
  config.lz77 = DpzipLz77ConfigForLevel(c.level);
  config.entropy = c.entropy;
  return DpzipCodec(config);
}

}  // namespace golden
}  // namespace cdpu

#endif  // TESTS_GOLDEN_DPZIP_CORPUS_H_
