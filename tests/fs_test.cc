// Tests for the filesystem simulators: Btrfs-like extent compression with
// read amplification (Finding 9), ZFS-like record-size compression
// (Figure 17), and the scheme-dependent latency orderings (Finding 10/11).

#include <gtest/gtest.h>

#include "src/fs/btrfs_sim.h"
#include "src/fs/zfs_sim.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

struct FsFixture {
  SimSsd ssd;
  CompressionBackend backend;

  explicit FsFixture(CompressionScheme scheme)
      : ssd(MakeSchemeSsdConfig(scheme, 128 * 1024)), backend(MakeSchemeBackend(scheme)) {}
};

// ------------------------------------------------------------------- btrfs

TEST(BtrfsTest, WriteSyncReadRoundTrip) {
  for (CompressionScheme scheme :
       {CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat4xxx,
        CompressionScheme::kDpCsd}) {
    FsFixture fx(scheme);
    BtrfsSim fs(BtrfsConfig{}, &fx.ssd, fx.backend);
    std::vector<uint8_t> data = GenerateTextLike(256 * 1024, 5);

    SimNanos t = 0;
    for (size_t off = 0; off < data.size(); off += 65536) {
      Result<SimNanos> w = fs.Write(off, ByteSpan(data.data() + off, 65536), t);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      t = *w;
    }
    Result<SimNanos> s = fs.Sync(t);
    ASSERT_TRUE(s.ok()) << s.status().ToString();
    t = *s;

    for (size_t off = 0; off < data.size(); off += 100000) {
      size_t len = std::min<size_t>(4096, data.size() - off);
      Result<BtrfsSim::ReadOutcome> r = fs.Read(off, len, t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      t = r->completion;
      EXPECT_TRUE(std::equal(r->data.begin(), r->data.end(), data.begin() + off))
          << SchemeName(scheme);
    }
  }
}

TEST(BtrfsTest, CompressionShrinksStoredBytes) {
  FsFixture off(CompressionScheme::kOff);
  FsFixture cpu(CompressionScheme::kCpu);
  BtrfsSim fs_off(BtrfsConfig{}, &off.ssd, off.backend);
  BtrfsSim fs_cpu(BtrfsConfig{}, &cpu.ssd, cpu.backend);
  std::vector<uint8_t> data = GenerateDbTableLike(512 * 1024, 6);

  SimNanos t1 = 0;
  SimNanos t2 = 0;
  for (size_t o = 0; o < data.size(); o += 131072) {
    t1 = *fs_off.Write(o, ByteSpan(data.data() + o, 131072), t1);
    t2 = *fs_cpu.Write(o, ByteSpan(data.data() + o, 131072), t2);
  }
  ASSERT_TRUE(fs_off.Sync(t1).ok());
  ASSERT_TRUE(fs_cpu.Sync(t2).ok());
  EXPECT_LT(fs_cpu.stored_bytes(), fs_off.stored_bytes() / 2);
}

TEST(BtrfsTest, SmallReadsAmplifyToWholeExtent) {
  // Finding 9: a 4 KB read of a compressed 128 KB extent fetches all of it.
  FsFixture fx(CompressionScheme::kCpu);
  BtrfsSim fs(BtrfsConfig{}, &fx.ssd, fx.backend);
  std::vector<uint8_t> data = GenerateTextLike(131072, 7);
  SimNanos t = *fs.Write(0, data, 0);
  t = *fs.Sync(t);

  Result<BtrfsSim::ReadOutcome> r = fs.Read(4096, 4096, t);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->extent_bytes_fetched, 30000u);  // compressed whole extent
}

TEST(BtrfsTest, OffHasNoReadAmplificationPenalty) {
  // OFF and DP-CSD avoid the extent decompression (extents stored raw can
  // still be fetched page-wise in a real FS; our model fetches the extent
  // but skips decompression).
  FsFixture off(CompressionScheme::kOff);
  FsFixture cpu(CompressionScheme::kCpu);
  BtrfsSim fs_off(BtrfsConfig{}, &off.ssd, off.backend);
  BtrfsSim fs_cpu(BtrfsConfig{}, &cpu.ssd, cpu.backend);
  std::vector<uint8_t> data = GenerateTextLike(131072, 8);
  SimNanos t1 = *fs_off.Write(0, data, 0);
  t1 = *fs_off.Sync(t1);
  SimNanos t2 = *fs_cpu.Write(0, data, 0);
  t2 = *fs_cpu.Sync(t2);

  Result<BtrfsSim::ReadOutcome> r_off = fs_off.Read(0, 4096, t1);
  Result<BtrfsSim::ReadOutcome> r_cpu = fs_cpu.Read(0, 4096, t2);
  ASSERT_TRUE(r_off.ok());
  ASSERT_TRUE(r_cpu.ok());
  EXPECT_LT(r_off->completion - t1, r_cpu->completion - t2);
}

TEST(BtrfsTest, ChecksummingChargedWhenCompressing) {
  FsFixture fx(CompressionScheme::kCpu);
  BtrfsSim fs(BtrfsConfig{}, &fx.ssd, fx.backend);
  std::vector<uint8_t> data = GenerateTextLike(131072, 9);
  SimNanos t = *fs.Write(0, data, 0);
  ASSERT_TRUE(fs.Sync(t).ok());
  EXPECT_GT(fs.checksum_overhead_ns(), 0.0);
}

TEST(BtrfsTest, RejectsUnalignedWrites) {
  FsFixture fx(CompressionScheme::kOff);
  BtrfsSim fs(BtrfsConfig{}, &fx.ssd, fx.backend);
  std::vector<uint8_t> d(100);
  EXPECT_FALSE(fs.Write(0, d, 0).ok());
  EXPECT_FALSE(fs.Write(5, std::vector<uint8_t>(4096), 0).ok());
}

// --------------------------------------------------------------------- zfs

TEST(ZfsTest, RoundTripAcrossRecordSizes) {
  for (size_t rec : {size_t{4096}, size_t{16384}, size_t{131072}}) {
    FsFixture fx(CompressionScheme::kCpu);
    ZfsConfig cfg;
    cfg.record_bytes = rec;
    ZfsSim fs(cfg, &fx.ssd, fx.backend);
    std::vector<uint8_t> data = GenerateXmlLike(rec * 4, 10);

    SimNanos t = 0;
    for (size_t o = 0; o < data.size(); o += rec) {
      Result<SimNanos> w = fs.WriteRecord(o, ByteSpan(data.data() + o, rec), t);
      ASSERT_TRUE(w.ok()) << w.status().ToString();
      t = *w;
    }
    for (size_t o = 0; o < data.size(); o += rec + 4096) {
      size_t off = o - o % 512;
      size_t len = std::min<size_t>(4096, data.size() - off);
      if (off / rec != (off + len - 1) / rec) {
        continue;  // keep within one record
      }
      Result<ZfsSim::ReadOutcome> r = fs.Read(off, len, t);
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      EXPECT_TRUE(std::equal(r->data.begin(), r->data.end(), data.begin() + off));
      t = r->completion;
    }
  }
}

TEST(ZfsTest, LargerRecordsRaiseSmallReadLatency) {
  // Figure 17: CPU-decompressed latency grows with record size.
  auto latency = [](size_t rec) {
    FsFixture fx(CompressionScheme::kCpu);
    ZfsConfig cfg;
    cfg.record_bytes = rec;
    ZfsSim fs(cfg, &fx.ssd, fx.backend);
    std::vector<uint8_t> data = GenerateTextLike(rec, 11);
    SimNanos t = *fs.WriteRecord(0, data, 0);
    Result<ZfsSim::ReadOutcome> r = fs.Read(0, 4096, t);
    EXPECT_TRUE(r.ok());
    return r->completion - t;
  };
  SimNanos small = latency(4096);
  SimNanos big = latency(131072);
  EXPECT_GT(big, small * 2);
}

TEST(ZfsTest, DpCsdNearOffLatency) {
  // Finding 10: DP-CSD only slightly above the OFF baseline.
  auto latency = [](CompressionScheme scheme) {
    FsFixture fx(scheme);
    ZfsConfig cfg;
    cfg.record_bytes = 131072;
    ZfsSim fs(cfg, &fx.ssd, fx.backend);
    std::vector<uint8_t> data = GenerateTextLike(cfg.record_bytes, 12);
    SimNanos t = *fs.WriteRecord(0, data, 0);
    Result<ZfsSim::ReadOutcome> r = fs.Read(0, 4096, t);
    EXPECT_TRUE(r.ok());
    return r->completion - t;
  };
  SimNanos off = latency(CompressionScheme::kOff);
  SimNanos dpcsd = latency(CompressionScheme::kDpCsd);
  SimNanos cpu = latency(CompressionScheme::kCpu);
  EXPECT_LT(dpcsd, cpu);
  EXPECT_LT(static_cast<double>(dpcsd), static_cast<double>(off) * 1.6);
}

TEST(ZfsTest, LargerRecordsCompressBetter) {
  auto ratio = [](size_t rec) {
    FsFixture fx(CompressionScheme::kCpu);
    ZfsConfig cfg;
    cfg.record_bytes = rec;
    ZfsSim fs(cfg, &fx.ssd, fx.backend);
    std::vector<uint8_t> data = GenerateTextLike(131072, 13);
    SimNanos t = 0;
    for (size_t o = 0; o < data.size(); o += rec) {
      t = *fs.WriteRecord(o, ByteSpan(data.data() + o, rec), t);
    }
    return static_cast<double>(fs.stored_bytes()) / static_cast<double>(fs.logical_bytes());
  };
  EXPECT_LT(ratio(131072), ratio(4096));
}

TEST(ZfsTest, RejectsPartialRecords) {
  FsFixture fx(CompressionScheme::kOff);
  ZfsSim fs(ZfsConfig{}, &fx.ssd, fx.backend);
  EXPECT_FALSE(fs.WriteRecord(0, std::vector<uint8_t>(100), 0).ok());
  EXPECT_FALSE(fs.Read(0, 10, 0).ok());  // nothing written
}

}  // namespace
}  // namespace cdpu
