// Tests for the LSM KV store: skiplist, bloom filter, SSTable round trips
// through the storage stack, LSM flush/compaction correctness across all
// five compression schemes, and the structural effects of Finding 8.

#include <gtest/gtest.h>

#include "src/kv/bloom.h"
#include "src/kv/lsm.h"
#include "src/kv/skiplist.h"
#include "src/workload/datagen.h"
#include "src/workload/ycsb.h"

namespace cdpu {
namespace {

// ---------------------------------------------------------------- skiplist

TEST(SkiplistTest, PutGetOverwrite) {
  Skiplist list;
  list.Put("b", "1");
  list.Put("a", "2");
  list.Put("b", "3");
  ASSERT_NE(list.Get("a"), nullptr);
  EXPECT_EQ(list.Get("a")->value, "2");
  EXPECT_EQ(list.Get("b")->value, "3");
  EXPECT_EQ(list.Get("c"), nullptr);
  EXPECT_EQ(list.entry_count(), 2u);
}

TEST(SkiplistTest, DrainIsSorted) {
  Skiplist list;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    list.Put(std::to_string(rng.Uniform(10000)), "v");
  }
  std::vector<Skiplist::Entry> entries = list.Drain();
  for (size_t i = 1; i < entries.size(); ++i) {
    EXPECT_LT(entries[i - 1].key, entries[i].key);
  }
}

TEST(SkiplistTest, TombstonesRetained) {
  Skiplist list;
  list.Put("k", "v");
  list.Put("k", "", true);
  ASSERT_NE(list.Get("k"), nullptr);
  EXPECT_TRUE(list.Get("k")->tombstone);
}

// ------------------------------------------------------------------- bloom

TEST(BloomTest, NoFalseNegatives) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key" + std::to_string(i));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_TRUE(bloom.MayContain("key" + std::to_string(i)));
  }
}

TEST(BloomTest, LowFalsePositiveRate) {
  BloomFilter bloom(1000);
  for (int i = 0; i < 1000; ++i) {
    bloom.Add("key" + std::to_string(i));
  }
  int fp = 0;
  for (int i = 0; i < 10000; ++i) {
    if (bloom.MayContain("other" + std::to_string(i))) {
      ++fp;
    }
  }
  EXPECT_LT(fp, 400);  // < 4% at 10 bits/key
}

// ----------------------------------------------------------------- sstable

struct KvFixture {
  SimSsd ssd;
  LpnAllocator lpns;
  KvCompressionBackend backend;
  SsTable::BuildContext ctx;

  explicit KvFixture(CompressionScheme scheme)
      : ssd(MakeSchemeSsdConfig(scheme, 64 * 1024)), backend(MakeSchemeBackend(scheme)) {
    ctx.ssd = &ssd;
    ctx.lpns = &lpns;
    ctx.backend = &backend;
  }
};

std::vector<Skiplist::Entry> MakeEntries(int count, uint64_t seed) {
  Skiplist list;
  Rng rng(seed);
  for (int i = 0; i < count; ++i) {
    std::string key = YcsbWorkload::KeyString(rng.Uniform(1000000));
    std::vector<uint8_t> v = GenerateTextLike(200, seed * 1000 + i);
    list.Put(key, std::string(v.begin(), v.end()));
  }
  return list.Drain();
}

TEST(SsTableTest, BuildAndGetAllSchemes) {
  for (CompressionScheme scheme :
       {CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat8970,
        CompressionScheme::kDpCsd}) {
    KvFixture fx(scheme);
    std::vector<Skiplist::Entry> entries = MakeEntries(500, 7);
    Result<SsTable::BuildOutcome> b = SsTable::Build(entries, fx.ctx, 0);
    ASSERT_TRUE(b.ok()) << b.status().ToString();

    for (size_t i = 0; i < entries.size(); i += 37) {
      Result<SsTable::GetOutcome> g = b->table->Get(entries[i].key, b->completion);
      ASSERT_TRUE(g.ok());
      EXPECT_TRUE(g->found) << SchemeName(scheme) << " key " << entries[i].key;
      EXPECT_EQ(g->value, entries[i].value);
    }
    Result<SsTable::GetOutcome> miss = b->table->Get("zzz-not-there", b->completion);
    ASSERT_TRUE(miss.ok());
    EXPECT_FALSE(miss->found);
  }
}

TEST(SsTableTest, AppCompressionShrinksFile) {
  // Finding 8: QAT/CPU compression makes SSTables physically denser.
  KvFixture off(CompressionScheme::kOff);
  KvFixture qat(CompressionScheme::kQat8970);
  std::vector<Skiplist::Entry> entries = MakeEntries(2000, 8);
  Result<SsTable::BuildOutcome> b_off = SsTable::Build(entries, off.ctx, 0);
  Result<SsTable::BuildOutcome> b_qat = SsTable::Build(entries, qat.ctx, 0);
  ASSERT_TRUE(b_off.ok());
  ASSERT_TRUE(b_qat.ok());
  EXPECT_LT(b_qat->table->file_bytes(), b_off->table->file_bytes() * 0.8);
  EXPECT_EQ(b_qat->table->data_bytes(), b_off->table->data_bytes());
}

TEST(SsTableTest, DpCsdShrinksPhysicalNotLogical) {
  // DP-CSD: file (logical) size unchanged, SSD-internal footprint shrinks.
  KvFixture fx(CompressionScheme::kDpCsd);
  std::vector<Skiplist::Entry> entries = MakeEntries(2000, 9);
  Result<SsTable::BuildOutcome> b = SsTable::Build(entries, fx.ctx, 0);
  ASSERT_TRUE(b.ok());
  EXPECT_GT(fx.ssd.EffectiveCapacityGain(), 1.3);
  EXPECT_NEAR(static_cast<double>(b->table->file_bytes()),
              static_cast<double>(b->table->data_bytes()),
              static_cast<double>(b->table->data_bytes()) * 0.02);
}

TEST(SsTableTest, ReadAllReturnsEverythingInOrder) {
  KvFixture fx(CompressionScheme::kCpu);
  std::vector<Skiplist::Entry> entries = MakeEntries(800, 10);
  Result<SsTable::BuildOutcome> b = SsTable::Build(entries, fx.ctx, 0);
  ASSERT_TRUE(b.ok());
  SimNanos done = 0;
  Result<std::vector<Skiplist::Entry>> all = b->table->ReadAll(b->completion, &done);
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    EXPECT_EQ((*all)[i].key, entries[i].key);
    EXPECT_EQ((*all)[i].value, entries[i].value);
  }
}

// --------------------------------------------------------------------- lsm

class LsmSchemeTest : public ::testing::TestWithParam<CompressionScheme> {};

TEST_P(LsmSchemeTest, PutGetThroughFlushAndCompaction) {
  CompressionScheme scheme = GetParam();
  SimSsd ssd(MakeSchemeSsdConfig(scheme, 256 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 64 * 1024;
  cfg.sstable_data_bytes = 64 * 1024;
  cfg.level1_bytes = 256 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(scheme));

  SimNanos t = 0;
  std::map<std::string, std::string> model;
  Rng rng(11);
  for (int i = 0; i < 3000; ++i) {
    std::string key = YcsbWorkload::KeyString(rng.Uniform(700));
    std::vector<uint8_t> v = GenerateTextLike(150, i);
    std::string value(v.begin(), v.end());
    Result<SimNanos> w = db.Put(key, value, t);
    ASSERT_TRUE(w.ok()) << w.status().ToString();
    t = *w;
    model[key] = value;
  }
  ASSERT_TRUE(db.FlushMemtable(t).ok());
  EXPECT_GT(db.stats().flushes, 1u);

  int checked = 0;
  for (const auto& [key, value] : model) {
    Result<LsmDb::GetOutcome> g = db.Get(key, t);
    ASSERT_TRUE(g.ok()) << g.status().ToString();
    ASSERT_TRUE(g->found) << SchemeName(scheme) << " key " << key;
    EXPECT_EQ(g->value, value) << SchemeName(scheme) << " key " << key;
    if (++checked >= 200) {
      break;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Schemes, LsmSchemeTest,
                         ::testing::Values(CompressionScheme::kOff, CompressionScheme::kCpu,
                                           CompressionScheme::kQat8970,
                                           CompressionScheme::kQat4xxx,
                                           CompressionScheme::kDpCsd),
                         [](const auto& info) {
                           std::string n = SchemeName(info.param);
                           for (char& c : n) {
                             if (c == '-') {
                               c = '_';
                             }
                           }
                           return n;
                         });

TEST(LsmTest, DeleteHidesKey) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 64 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 16 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kOff));
  SimNanos t = 0;
  Result<SimNanos> w = db.Put("k1", "v1", t);
  ASSERT_TRUE(w.ok());
  ASSERT_TRUE(db.FlushMemtable(*w).ok());
  Result<SimNanos> d = db.Delete("k1", *w);
  ASSERT_TRUE(d.ok());
  Result<LsmDb::GetOutcome> g = db.Get("k1", *d);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->found);
}

TEST(LsmTest, MissingKeyNotFound) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kOff, 64 * 1024));
  LsmDb db(LsmConfig{}, &ssd, MakeSchemeBackend(CompressionScheme::kOff));
  Result<LsmDb::GetOutcome> g = db.Get("nothing", 0);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(g->found);
}

TEST(LsmTest, CompressionReducesTreeFootprint) {
  // Finding 8 structural effect: same data, smaller stored footprint with
  // app-level compression; DP-CSD matches OFF logically.
  auto build = [](CompressionScheme scheme) {
    auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 256 * 1024));
    LsmConfig cfg;
    cfg.memtable_bytes = 64 * 1024;
    LsmDb db(cfg, ssd.get(), MakeSchemeBackend(scheme));
    SimNanos t = 0;
    for (int i = 0; i < 1500; ++i) {
      std::vector<uint8_t> v = GenerateTextLike(200, i);
      Result<SimNanos> w =
          db.Put(YcsbWorkload::KeyString(i), std::string(v.begin(), v.end()), t);
      EXPECT_TRUE(w.ok());
      t = *w;
    }
    EXPECT_TRUE(db.FlushMemtable(t).ok());
    return std::make_pair(db.TotalFileBytes(), db.TotalDataBytes());
  };
  auto [off_file, off_data] = build(CompressionScheme::kOff);
  auto [qat_file, qat_data] = build(CompressionScheme::kQat4xxx);
  EXPECT_NEAR(static_cast<double>(off_data), static_cast<double>(qat_data),
              static_cast<double>(off_data) * 0.01);
  EXPECT_LT(qat_file, off_file * 0.8);
}

TEST(LsmTest, YcsbZipfianSmoke) {
  // End-to-end smoke: YCSB-A over the DP-CSD configuration.
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 256 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 64 * 1024;
  LsmDb db(cfg, &ssd, MakeSchemeBackend(CompressionScheme::kDpCsd));

  YcsbConfig ycfg;
  ycfg.workload = 'A';
  ycfg.record_count = 300;
  ycfg.value_size = 300;
  YcsbWorkload workload(ycfg);

  SimNanos t = 0;
  for (uint64_t k = 0; k < ycfg.record_count; ++k) {
    std::vector<uint8_t> v = workload.MakeValue(k);
    Result<SimNanos> w =
        db.Put(YcsbWorkload::KeyString(k), std::string(v.begin(), v.end()), t);
    ASSERT_TRUE(w.ok());
    t = *w;
  }
  uint64_t found = 0;
  for (int i = 0; i < 500; ++i) {
    YcsbRequest req = workload.NextRequest();
    std::string key = YcsbWorkload::KeyString(req.key);
    if (req.op == YcsbOp::kRead) {
      Result<LsmDb::GetOutcome> g = db.Get(key, t);
      ASSERT_TRUE(g.ok());
      t = g->completion;
      found += g->found ? 1 : 0;
    } else {
      std::vector<uint8_t> v = workload.MakeValue(req.key);
      Result<SimNanos> w = db.Put(key, std::string(v.begin(), v.end()), t);
      ASSERT_TRUE(w.ok());
      t = *w;
    }
  }
  EXPECT_GT(found, 100u);  // zipfian reads of loaded keys succeed
}

// -------------------------------------------------------------------- ycsb

TEST(YcsbTest, ZipfianSkewed) {
  ZipfianGenerator zipf(1000, 0.99, 3);
  std::vector<uint32_t> counts(1000, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[zipf.Next()];
  }
  // Head keys dominate: rank-0 far above uniform (100 hits).
  EXPECT_GT(counts[0], 2000u);
  uint64_t head = 0;
  for (int i = 0; i < 100; ++i) {
    head += counts[i];
  }
  EXPECT_GT(head, 50000u);  // top 10% of keys > 50% of traffic
}

TEST(YcsbTest, WorkloadMixMatchesSpec) {
  YcsbConfig cfg;
  cfg.workload = 'A';
  YcsbWorkload wl(cfg);
  int updates = 0;
  for (int i = 0; i < 10000; ++i) {
    if (wl.NextRequest().op == YcsbOp::kUpdate) {
      ++updates;
    }
  }
  EXPECT_NEAR(updates, 5000, 300);  // 50% updates

  YcsbConfig cfg_f;
  cfg_f.workload = 'F';
  YcsbWorkload wf(cfg_f);
  int rmw = 0;
  for (int i = 0; i < 10000; ++i) {
    if (wf.NextRequest().op == YcsbOp::kReadModifyWrite) {
      ++rmw;
    }
  }
  EXPECT_NEAR(rmw, 5000, 300);
}

TEST(YcsbTest, ValuesAreCompressible) {
  YcsbWorkload wl(YcsbConfig{});
  std::vector<uint8_t> v = wl.MakeValue(42);
  EXPECT_EQ(v.size(), 1000u);
  auto codec = MakeCodec("deflate-1");
  EXPECT_LT(codec->MeasureRatio(v), 0.8);
}

}  // namespace
}  // namespace cdpu
