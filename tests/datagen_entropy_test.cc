// The adaptive policy engine trusts the datagen entropy dial: the bench's
// "mixed corpus" chunks are labelled low/mid/high by their *requested*
// bits-per-byte, and the acceptance criteria compare per-class routing
// against those labels. These tests pin the dial itself — the realised
// Shannon entropy of GenerateWithEntropy output must track the request —
// and the GenerateMixedCorpus labelling on top of it.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/codecs/entropy.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

double MeasuredEntropy(const std::vector<uint8_t>& data) { return ShannonEntropy(data); }

TEST(DatagenEntropyTest, RealisedEntropyTracksRequestedBitsPerByte) {
  // 64 KiB is enough sample mass that the realised entropy of the
  // mixing-distribution draw concentrates near its expectation.
  constexpr size_t kSize = 64 * 1024;
  for (double target : {0.5, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0}) {
    std::vector<uint8_t> data = GenerateWithEntropy(target, kSize, /*seed=*/91);
    ASSERT_EQ(data.size(), kSize);
    const double got = MeasuredEntropy(data);
    EXPECT_NEAR(got, target, 0.35) << "requested " << target << " bits/byte";
  }
}

TEST(DatagenEntropyTest, FullDialIsIncompressible) {
  std::vector<uint8_t> data = GenerateWithEntropy(8.0, 64 * 1024, /*seed=*/92);
  EXPECT_GT(MeasuredEntropy(data), 7.9);
}

TEST(DatagenEntropyTest, ZeroDialIsConstant) {
  std::vector<uint8_t> data = GenerateWithEntropy(0.0, 4096, /*seed=*/93);
  EXPECT_LT(MeasuredEntropy(data), 0.1);
}

TEST(DatagenEntropyTest, GeneratorIsDeterministicInSeed) {
  std::vector<uint8_t> a = GenerateWithEntropy(3.5, 8192, /*seed=*/7);
  std::vector<uint8_t> b = GenerateWithEntropy(3.5, 8192, /*seed=*/7);
  std::vector<uint8_t> c = GenerateWithEntropy(3.5, 8192, /*seed=*/8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(DatagenEntropyTest, MixedCorpusCoversAllClasses) {
  std::vector<MixedChunk> corpus = GenerateMixedCorpus(/*chunks=*/10, /*chunk_bytes=*/16384,
                                                       /*seed=*/44);
  ASSERT_EQ(corpus.size(), 10u);
  size_t low = 0;
  size_t mid = 0;
  size_t high = 0;
  for (const MixedChunk& chunk : corpus) {
    ASSERT_EQ(chunk.data.size(), 16384u);
    if (chunk.klass == "low") {
      ++low;
    } else if (chunk.klass == "mid") {
      ++mid;
    } else if (chunk.klass == "high") {
      ++high;
    } else {
      FAIL() << "unknown class label " << chunk.klass;
    }
    // The label must agree with the engine's class boundaries applied to the
    // *requested* dial setting...
    const char* expect = chunk.entropy_bits < 3.0   ? "low"
                         : chunk.entropy_bits < 6.5 ? "mid"
                                                    : "high";
    EXPECT_EQ(chunk.klass, expect);
    // ...and the realised entropy must actually land in that class's range.
    const double got = MeasuredEntropy(chunk.data);
    EXPECT_NEAR(got, chunk.entropy_bits, 0.35);
  }
  EXPECT_GT(low, 0u);
  EXPECT_GT(mid, 0u);
  EXPECT_GT(high, 0u);
}

TEST(DatagenEntropyTest, MixedCorpusChunksAreIndependentOfCount) {
  // Chunk i depends only on (seed, i): generating a longer corpus must not
  // perturb earlier chunks, so subranges are reproducible.
  std::vector<MixedChunk> small = GenerateMixedCorpus(3, 4096, /*seed=*/5);
  std::vector<MixedChunk> large = GenerateMixedCorpus(8, 4096, /*seed=*/5);
  for (size_t i = 0; i < small.size(); ++i) {
    EXPECT_EQ(small[i].data, large[i].data) << "chunk " << i;
  }
}

}  // namespace
}  // namespace cdpu
