// End-to-end loopback tests for the adaptive policy engine behind the wire
// (ISSUE 9): AUTO requests route per payload, incompressible data is STOREd
// with zero codec work and zero runtime jobs, stored frames decompress via
// the passthrough, fixed-codec traffic never pays the profiler, the AUTO
// rejection matrix holds, and the fault-injected AUTO run loses nothing.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/fault/fault_plan.h"
#include "src/hw/device_configs.h"
#include "src/svc/client.h"
#include "src/svc/loadgen.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace svc {
namespace {

int FuzzRounds() {
  const char* env = std::getenv("CDPU_FUZZ_ROUNDS");
  if (env == nullptr) {
    return 1;
  }
  int rounds = std::atoi(env);
  return rounds > 0 ? rounds : 1;
}

ByteVec RandomBytes(size_t size, uint64_t seed) {
  Rng rng(seed);
  ByteVec data(size);
  for (uint8_t& b : data) {
    b = rng.NextByte();
  }
  return data;
}

TEST(AdaptLoopbackTest, AutoRoutesCompressibleDataToARealCodec) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  ByteVec payload(GenerateTextLike(96 * 1024, 51));
  CallResult c = client.Compress("auto", payload);
  ASSERT_TRUE(c.status.ok()) << c.status.ToString();
  EXPECT_FALSE(c.stored());
  EXPECT_LT(c.output.size(), payload.size());  // actually compressed

  // The response names the codec the policy picked; decompressing with
  // exactly that name must round-trip.
  std::string chosen = WireCodecToName(c.codec, c.level);
  ASSERT_FALSE(chosen.empty());
  EXPECT_NE(chosen, "auto");
  CallResult d = client.Decompress(chosen, c.output);
  ASSERT_TRUE(d.status.ok()) << d.status.ToString();
  ASSERT_EQ(d.output.size(), payload.size());
  EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()));

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.adapt.decisions, 1u);
  EXPECT_EQ(stats.adapt.profiled, 1u);
  EXPECT_EQ(stats.adapt.bypassed, 0u);
  EXPECT_EQ(stats.requests_failed, 0u);
}

// The acceptance bar: incompressible AUTO payloads are STOREd — the response
// payload is byte-identical (expansion is the 40-byte frame header only,
// well under the 2% ceiling), the STORE flag is wire-visible, and the
// offload runtime saw ZERO jobs: no codec ran anywhere.
TEST(AdaptLoopbackTest, IncompressibleDataIsStoredWithZeroCodecWork) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  constexpr size_t kPayload = 64 * 1024;
  ByteVec payload = RandomBytes(kPayload, 52);
  CallResult c = client.Compress("auto", payload);
  ASSERT_TRUE(c.status.ok()) << c.status.ToString();
  EXPECT_TRUE(c.stored());
  // Identity payload: zero expansion beyond framing. 40-byte header on a
  // 64 KiB payload is 0.06% — the <=2% overhead criterion with margin.
  ASSERT_EQ(c.output.size(), payload.size());
  EXPECT_TRUE(std::equal(c.output.begin(), c.output.end(), payload.begin()));
  static_assert(kHeaderBytes * 100 <= 2 * kPayload, "header overhead exceeds 2% bound");

  // A stored frame decompresses through the passthrough.
  CallResult d = client.DecompressStored(c.output);
  ASSERT_TRUE(d.status.ok()) << d.status.ToString();
  EXPECT_TRUE(d.stored());
  ASSERT_EQ(d.output.size(), payload.size());
  EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()));

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.adapt.bypassed, 1u);
  EXPECT_EQ(stats.adapt.bypass_bytes, payload.size());
  EXPECT_EQ(stats.requests_stored, 1u);
  EXPECT_EQ(stats.stored_passthrough, 1u);
  // The load never reached the offload runtime: zero jobs submitted.
  EXPECT_EQ(stats.runtime.jobs_submitted, 0u);
  EXPECT_EQ(stats.requests_failed, 0u);
}

// Fixed-codec requests must take a zero-overhead fast path around the
// profiler: the engine exists, but explicit codecs never consult it.
TEST(AdaptLoopbackTest, FixedCodecRequestsNeverPayTheProfiler) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  ByteVec payload(GenerateTextLike(32 * 1024, 53));
  for (const char* codec : {"lz4", "snappy", "zstd-1"}) {
    CallResult c = client.Compress(codec, payload);
    ASSERT_TRUE(c.status.ok()) << codec;
    EXPECT_FALSE(c.stored());
    CallResult d = client.Decompress(codec, c.output);
    ASSERT_TRUE(d.status.ok()) << codec;
    EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin())) << codec;
  }

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.adapt.decisions, 0u);
  EXPECT_EQ(stats.adapt.profiled, 0u);
  EXPECT_EQ(stats.adapt.profile_skipped, 0u);
  EXPECT_EQ(stats.requests_stored, 0u);
}

TEST(AdaptLoopbackTest, AutoRejectionMatrix) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  ByteVec payload(GenerateTextLike(8 * 1024, 54));
  // AUTO + decompress is meaningless: the stored passthrough carries its own
  // flag, and a compressed frame names its concrete codec. The server must
  // answer with a semantic error, not a poisoned session — the same
  // connection keeps working afterwards.
  CallResult d = client.Decompress("auto", payload);
  EXPECT_FALSE(d.status.ok());

  CallResult c = client.Compress("auto", payload);
  EXPECT_TRUE(c.status.ok()) << c.status.ToString();

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_GE(stats.requests_failed, 1u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST(AdaptLoopbackTest, DisabledEngineDegradesAutoToDefaultCodec) {
  ServerOptions sopts;
  sopts.adapt.enabled = false;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());
  ClientOptions copts;
  copts.port = server.port();
  ServiceClient client(copts);

  // Even incompressible data is NOT bypassed when the engine is off.
  ByteVec payload = RandomBytes(32 * 1024, 55);
  CallResult c = client.Compress("auto", payload);
  ASSERT_TRUE(c.status.ok()) << c.status.ToString();
  EXPECT_FALSE(c.stored());
  EXPECT_TRUE(c.profile_skipped());
  std::string chosen = WireCodecToName(c.codec, c.level);
  EXPECT_EQ(chosen, sopts.adapt.default_codec);
  CallResult d = client.Decompress(chosen, c.output);
  ASSERT_TRUE(d.status.ok());
  EXPECT_TRUE(std::equal(d.output.begin(), d.output.end(), payload.begin()));

  server.Stop();
  EXPECT_EQ(server.Snapshot().adapt.profiled, 0u);
}

// AUTO under a mixed closed loop: compressible traffic routes to real
// codecs, incompressible traffic is STOREd, and every round trip verifies.
TEST(AdaptLoopbackTest, MixedAutoClosedLoopVerifiesEverything) {
  ServerOptions sopts;
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  // Half the clients offer compressible payloads, half incompressible.
  LoadGenOptions compressible;
  compressible.port = server.port();
  compressible.clients = 2;
  compressible.requests_per_client = 8 * FuzzRounds();
  compressible.payload_bytes = 24 * 1024;
  compressible.codec = "auto";
  compressible.target_ratio = 0.4;
  Result<LoadGenReport> a = RunClosedLoop(compressible);
  ASSERT_TRUE(a.ok()) << a.status().ToString();

  LoadGenOptions incompressible = compressible;
  incompressible.target_ratio = 1.0;  // uniform random payloads
  Result<LoadGenReport> b = RunClosedLoop(incompressible);
  ASSERT_TRUE(b.ok()) << b.status().ToString();

  server.Stop();
  const uint64_t per_run = 2u * compressible.requests_per_client;
  EXPECT_EQ(a->requests_ok, per_run);
  EXPECT_EQ(a->verify_failures, 0u);
  EXPECT_EQ(a->requests_stored, 0u);  // 0.4-ratio data must not bypass
  EXPECT_LT(a->bytes_out, a->bytes_in);

  EXPECT_EQ(b->requests_ok, per_run);
  EXPECT_EQ(b->verify_failures, 0u);
  EXPECT_EQ(b->requests_stored, per_run);  // random data always bypasses
  EXPECT_EQ(b->bytes_out, b->bytes_in);    // identity passthrough

  ServiceStats stats = server.Snapshot();
  EXPECT_EQ(stats.adapt.bypassed, per_run);
  EXPECT_EQ(stats.requests_failed, 0u);
}

// Fault-fuzz on the AUTO path: the policy picks real codecs while the fault
// injector fires inside the runtime; retry/CPU-fallback must stay invisible
// at the wire — nothing lost, duplicated or corrupted.
TEST(AdaptLoopbackTest, FaultInjectedAutoRunLosesNothing) {
  ServerOptions sopts;
  sopts.runtime.device = Qat8970Config();
  sopts.runtime.fault_plan.seed = 0xADA7ull;
  for (uint32_t kind = 0; kind < kNumFaultKinds; ++kind) {
    sopts.runtime.fault_plan.rate[kind] = 0.05;
  }
  ServiceServer server(sopts);
  ASSERT_TRUE(server.Start().ok());

  LoadGenOptions lopts;
  lopts.port = server.port();
  lopts.clients = 6;
  lopts.tenants = 3;
  lopts.requests_per_client = 12 * FuzzRounds();
  lopts.payload_bytes = 24 * 1024;
  lopts.codec = "auto";
  lopts.target_ratio = 0.4;
  Result<LoadGenReport> run = RunClosedLoop(lopts);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  server.Stop();
  ServiceStats stats = server.Snapshot();
  EXPECT_GT(stats.runtime.faults_injected, 0u);
  EXPECT_EQ(run->requests_ok, 6u * lopts.requests_per_client);
  EXPECT_EQ(run->requests_failed, 0u);
  EXPECT_EQ(run->verify_failures, 0u);
  EXPECT_EQ(stats.responses_dropped, 0u);
  // Completion telemetry flowed back into the model throughout the run.
  EXPECT_GT(stats.adapt.feedback, 0u);
}

}  // namespace
}  // namespace svc
}  // namespace cdpu
