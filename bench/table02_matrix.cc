// Table 2: CPU software vs peripheral vs on-chip vs in-storage CDPUs —
// the qualitative feature matrix, with each cell derived from a measured
// run of the models rather than asserted.

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

const char* Yes() { return "yes"; }
const char* No() { return "no"; }

void Run(ExperimentContext& ctx) {
  const uint64_t requests = ctx.Pick(1500, 4000);

  CdpuDevice cpu(CpuSoftwareConfig("deflate"));
  CdpuDevice qat8970(Qat8970Config());
  CdpuDevice qat4xxx(Qat4xxxConfig());
  CdpuDevice dpzip(DpzipCdpuConfig());

  // Measured evidence backing the matrix cells.
  auto thread_scaling = [requests](CdpuDevice& d, uint32_t lo, uint32_t hi) {
    double a = d.RunClosedLoop(CdpuOp::kCompress, requests, 4096, 0.45, lo).gbps;
    double b = d.RunClosedLoop(CdpuOp::kCompress, requests, 4096, 0.45, hi).gbps;
    return b / a;
  };
  double cpu_scale = thread_scaling(cpu, 8, 88);
  double qat8970_scale = thread_scaling(qat8970, 8, 88);
  double qat4xxx_scale = thread_scaling(qat4xxx, 8, 88);
  double dpzip_scale = thread_scaling(dpzip, 8, 88);

  double dpzip_multi =
      RunDeviceFleet(DpzipCdpuConfig(), 8, CdpuOp::kCompress, requests, 65536, 0.4, 64).gbps /
      RunDeviceFleet(DpzipCdpuConfig(), 1, CdpuOp::kCompress, requests, 65536, 0.4, 8).gbps;

  obs::Table& t = ctx.AddTable(
      "placement_matrix", "",
      {Column("property"), Column("cpu", "CPU"), Column("peripheral"), Column("on_chip", "on-chip"),
       Column("in_storage", "in-storage")});
  t.AddRow({"CPU offloading", No(), Yes(), Yes(), Yes()});
  t.AddRow({"compression acceleration", No(), Yes(), Yes(), Yes()});
  t.AddRow({"cost reduction", No(), "partial ($882 card)", Yes(), Yes()});
  t.AddRow({"power efficiency", No(), No(), "partial", Yes()});
  t.AddRow({"multi-thread scalability", Fmt(cpu_scale, 1) + "x (8->88 thr)",
            Fmt(qat8970_scale, 1) + "x", Fmt(qat4xxx_scale, 1) + "x",
            Fmt(dpzip_scale, 1) + "x"});
  t.AddRow({"multi-device scalability", No(), "PCIe slots", "sockets (<=4)",
            Fmt(dpzip_multi, 1) + "x at 8 drives"});
  t.AddRow({"plug and play", No(), No(), No(), Yes()});
  t.AddRow({"compression ratio", "best", "best", "best", "-2pp (4K pages)"});
  t.AddRow({"algorithm configurability", Yes(), "partial", No(), No()});
  ctx.Note("Cells marked with measurements come from the closed-loop models;\n"
           "the rest restate architectural properties (Table 2 of the paper).");
}

CDPU_REGISTER_EXPERIMENT("table02", "Table 2",
                         "CPU software vs hardware CDPU placements", Run);

}  // namespace
}  // namespace cdpu
