// Table 2: CPU software vs peripheral vs on-chip vs in-storage CDPUs —
// the qualitative feature matrix, with each cell derived from a measured
// run of the models rather than asserted.

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

const char* Yes() { return "yes"; }
const char* No() { return "no"; }

void Run() {
  PrintHeader("Table 2", "CPU software vs hardware CDPU placements");

  CdpuDevice cpu(CpuSoftwareConfig("deflate"));
  CdpuDevice qat8970(Qat8970Config());
  CdpuDevice qat4xxx(Qat4xxxConfig());
  CdpuDevice dpzip(DpzipCdpuConfig());

  // Measured evidence backing the matrix cells.
  auto thread_scaling = [](CdpuDevice& d, uint32_t lo, uint32_t hi) {
    double a = d.RunClosedLoop(CdpuOp::kCompress, 4000, 4096, 0.45, lo).gbps;
    double b = d.RunClosedLoop(CdpuOp::kCompress, 4000, 4096, 0.45, hi).gbps;
    return b / a;
  };
  double cpu_scale = thread_scaling(cpu, 8, 88);
  double qat8970_scale = thread_scaling(qat8970, 8, 88);
  double qat4xxx_scale = thread_scaling(qat4xxx, 8, 88);
  double dpzip_scale = thread_scaling(dpzip, 8, 88);

  double dpzip_multi =
      RunDeviceFleet(DpzipCdpuConfig(), 8, CdpuOp::kCompress, 4000, 65536, 0.4, 64).gbps /
      RunDeviceFleet(DpzipCdpuConfig(), 1, CdpuOp::kCompress, 4000, 65536, 0.4, 8).gbps;

  PrintRow({"property", "CPU", "peripheral", "on-chip", "in-storage"}, 26);
  PrintRule(5, 26);
  PrintRow({"CPU offloading", No(), Yes(), Yes(), Yes()}, 26);
  PrintRow({"compression acceleration", No(), Yes(), Yes(), Yes()}, 26);
  PrintRow({"cost reduction", No(), "partial ($882 card)", Yes(), Yes()}, 26);
  PrintRow({"power efficiency", No(), No(), "partial", Yes()}, 26);
  PrintRow({"multi-thread scalability",
            Fmt(cpu_scale, 1) + "x (8->88 thr)", Fmt(qat8970_scale, 1) + "x",
            Fmt(qat4xxx_scale, 1) + "x", Fmt(dpzip_scale, 1) + "x"},
           26);
  PrintRow({"multi-device scalability", No(), "PCIe slots", "sockets (<=4)",
            Fmt(dpzip_multi, 1) + "x at 8 drives"},
           26);
  PrintRow({"plug and play", No(), No(), No(), Yes()}, 26);
  PrintRow({"compression ratio", "best", "best", "best", "-2pp (4K pages)"}, 26);
  PrintRow({"algorithm configurability", Yes(), "partial", No(), No()}, 26);
  std::printf("\nCells marked with measurements come from the closed-loop models;\n"
              "the rest restate architectural properties (Table 2 of the paper).\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
