// Figure 14: YCSB throughput (KOPS) over the LSM store as client threads
// scale, across the five compression schemes. Finding 6: QAT plateaus from
// queue ceilings; DP-CSD tracks the OFF baseline and scales furthest.

#include <memory>

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

double RunScheme(ExperimentContext& ctx, CompressionScheme scheme, char workload,
                 uint32_t threads) {
  bench::YcsbScenarioParams params;
  params.workload = workload;
  params.record_count = ctx.Pick(600, 1500);
  params.sstable_data_bytes = 128 * 1024;
  Result<std::unique_ptr<bench::YcsbScenario>> sc = bench::MakeYcsbScenario(scheme, params);
  if (!sc.ok()) {
    return 0;
  }
  Result<YcsbRunResult> r =
      YcsbRun((*sc)->db.get(), (*sc)->workload.get(), threads, ctx.Pick(1200, 4000),
              (*sc)->clock);
  return r.ok() ? r->kops : 0;
}

void RunWorkload(ExperimentContext& ctx, char workload) {
  obs::Table& t = ctx.AddTable(
      std::string("workload_") + workload,
      std::string("Workload-") + workload + " throughput (KOPS)",
      {Column("threads", "", 0), Column("off", "OFF", 0), Column("cpu", "CPU", 0),
       Column("qat_8970", "QAT-8970", 0), Column("qat_4xxx", "QAT-4xxx", 0),
       Column("csd_2000", "CSD-2000", 0), Column("dp_csd", "DP-CSD", 0)});
  std::vector<uint32_t> thread_counts =
      ctx.quick() ? std::vector<uint32_t>{1, 10, 48, 88}
                  : std::vector<uint32_t>{1, 4, 10, 24, 48, 88};
  for (uint32_t threads : thread_counts) {
    std::vector<obs::Json> row;
    row.push_back(threads);
    for (CompressionScheme scheme : bench::AllSchemes()) {
      row.push_back(RunScheme(ctx, scheme, workload, threads));
    }
    t.AddRow(std::move(row));
  }
}

void Run(ExperimentContext& ctx) {
  RunWorkload(ctx, 'A');
  if (!ctx.quick()) {
    RunWorkload(ctx, 'F');
  }
  ctx.Note("Paper shape: CPU compression costs ~25%; QAT recovers it but\n"
           "plateaus (64-deep queues); the FPGA CSD 2000 collapses under high\n"
           "concurrency (Finding 7: ~2.5 GB/s internal AXI, 1 engine); DP-CSD\n"
           "tracks/leads OFF and keeps scaling (1 MOPS at 88 threads).");
}

CDPU_REGISTER_EXPERIMENT("fig14", "Figure 14",
                         "YCSB throughput vs threads (RocksDB stand-in)", Run);

}  // namespace
}  // namespace cdpu
