// Figure 14: YCSB throughput (KOPS) over the LSM store as client threads
// scale, across the five compression schemes. Finding 6: QAT plateaus from
// queue ceilings; DP-CSD tracks the OFF baseline and scales furthest.

#include <memory>

#include "bench/bench_util.h"
#include "src/kv/ycsb_runner.h"

namespace cdpu {
namespace {

constexpr uint64_t kRecords = 1500;
constexpr uint64_t kOps = 4000;

double RunScheme(CompressionScheme scheme, char workload, uint32_t threads) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 128 * 1024;
  cfg.sstable_data_bytes = 128 * 1024;
  LsmDb db(cfg, ssd.get(), MakeSchemeBackend(scheme));

  YcsbConfig ycfg;
  ycfg.workload = workload;
  ycfg.record_count = kRecords;
  ycfg.value_size = 400;
  ycfg.seed = 7;
  YcsbWorkload wl(ycfg);

  SimNanos clock = 0;
  if (!YcsbLoad(&db, wl, &clock).ok()) {
    return 0;
  }
  Result<YcsbRunResult> r = YcsbRun(&db, &wl, threads, kOps, clock);
  return r.ok() ? r->kops : 0;
}

void RunWorkload(char workload) {
  std::printf("\nWorkload-%c throughput (KOPS)\n", workload);
  PrintRow({"threads", "OFF", "CPU", "QAT-8970", "QAT-4xxx", "CSD-2000", "DP-CSD"});
  PrintRule(7);
  for (uint32_t threads : {1u, 4u, 10u, 24u, 48u, 88u}) {
    PrintRow({Fmt(threads, 0), Fmt(RunScheme(CompressionScheme::kOff, workload, threads), 0),
              Fmt(RunScheme(CompressionScheme::kCpu, workload, threads), 0),
              Fmt(RunScheme(CompressionScheme::kQat8970, workload, threads), 0),
              Fmt(RunScheme(CompressionScheme::kQat4xxx, workload, threads), 0),
              Fmt(RunScheme(CompressionScheme::kCsd2000, workload, threads), 0),
              Fmt(RunScheme(CompressionScheme::kDpCsd, workload, threads), 0)});
  }
}

void Run() {
  PrintHeader("Figure 14", "YCSB throughput vs threads (RocksDB stand-in)");
  RunWorkload('A');
  RunWorkload('F');
  std::printf("\nPaper shape: CPU compression costs ~25%%; QAT recovers it but\n"
              "plateaus (64-deep queues); the FPGA CSD 2000 collapses under high\n"
              "concurrency (Finding 7: ~2.5 GB/s internal AXI, 1 engine); DP-CSD\n"
              "tracks/leads OFF and keeps scaling (1 MOPS at 88 threads).\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
