// adaptive_policy: the ISSUE 9 acceptance experiment. A mixed corpus from
// the datagen entropy dial (all three compressibility classes, including
// fully incompressible chunks) is pushed through the compression service
// under four policy arms: every fixed candidate codec, AUTO (profile +
// bypass + model-driven selection) and bypass-only (STORE detection with a
// fixed default for everything else). Reports per-arm and per-(arm, class)
// throughput, achieved ratio and p99, the AUTO routing shares per class,
// and the headline gauges the CI bench-smoke greps:
//   adaptive.bypass_share          — fraction of AUTO requests STOREd
//   adaptive.auto_vs_fixed_best    — AUTO MB/s over the best fixed arm's
//   adaptive.auto_vs_fixed_worst   — AUTO MB/s over the worst fixed arm's
//
// Throughput here is bytes offered over summed client-observed compress
// latency (not wall clock), so arm comparisons are stable under CI
// scheduling noise.

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/common/stats.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/stats_export.h"
#include "src/svc/wire.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr const char* kClasses[] = {"low", "mid", "high"};

struct ClassAgg {
  uint64_t requests = 0;
  uint64_t stored = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  double latency_us_sum = 0;
  SampleSet latency_us;
  std::map<std::string, uint64_t> routed;  // echoed codec ("store" for bypass)

  double mbps() const {
    return latency_us_sum > 0 ? static_cast<double>(bytes_in) / latency_us_sum : 0;
  }
  double ratio() const {
    return bytes_in > 0 ? static_cast<double>(bytes_out) / static_cast<double>(bytes_in) : 0;
  }
};

struct ArmResult {
  std::string arm;
  ClassAgg total;
  std::map<std::string, ClassAgg> per_class;
  uint64_t verify_failures = 0;
};

// Pushes every corpus chunk through the service once on `threads` clients
// (chunk i on thread i % threads, so the per-class mix is identical across
// arms) and verifies each round trip through the codec the response names.
ArmResult RunArm(uint16_t port, const std::string& codec, uint32_t threads,
                 const std::vector<MixedChunk>& corpus) {
  ArmResult result;
  result.arm = codec;
  std::vector<ArmResult> partials(threads);
  std::vector<std::thread> workers;
  workers.reserve(threads);
  for (uint32_t w = 0; w < threads; ++w) {
    workers.emplace_back([&, w] {
      ArmResult& out = partials[w];
      svc::ClientOptions copts;
      copts.port = port;
      copts.busy_retries = 64;
      svc::ServiceClient client(copts);
      for (size_t i = w; i < corpus.size(); i += threads) {
        const MixedChunk& chunk = corpus[i];
        svc::CallResult c = client.Compress(codec, chunk.data);
        if (!c.status.ok()) {
          ++out.verify_failures;
          continue;
        }
        const std::string routed =
            c.stored() ? "store" : svc::WireCodecToName(c.codec, c.level);
        ClassAgg& agg = out.per_class[chunk.klass];
        ++agg.requests;
        agg.stored += c.stored() ? 1 : 0;
        agg.bytes_in += chunk.data.size();
        agg.bytes_out += c.output.size();
        const double us = static_cast<double>(c.wall_ns) / 1e3;
        agg.latency_us_sum += us;
        agg.latency_us.Add(us);
        ++agg.routed[routed];

        svc::CallResult d =
            c.stored() ? client.DecompressStored(c.output) : client.Decompress(routed, c.output);
        if (!d.status.ok() || d.output.size() != chunk.data.size() ||
            !std::equal(d.output.begin(), d.output.end(), chunk.data.begin())) {
          ++out.verify_failures;
        }
      }
    });
  }
  for (std::thread& w : workers) {
    w.join();
  }
  for (ArmResult& p : partials) {
    result.verify_failures += p.verify_failures;
    for (auto& [klass, agg] : p.per_class) {
      ClassAgg& into = result.per_class[klass];
      into.requests += agg.requests;
      into.stored += agg.stored;
      into.bytes_in += agg.bytes_in;
      into.bytes_out += agg.bytes_out;
      into.latency_us_sum += agg.latency_us_sum;
      for (double s : agg.latency_us.samples()) {
        into.latency_us.Add(s);
      }
      for (auto& [codec_name, n] : agg.routed) {
        into.routed[codec_name] += n;
      }
    }
  }
  for (auto& [klass, agg] : result.per_class) {
    result.total.requests += agg.requests;
    result.total.stored += agg.stored;
    result.total.bytes_in += agg.bytes_in;
    result.total.bytes_out += agg.bytes_out;
    result.total.latency_us_sum += agg.latency_us_sum;
    for (double s : agg.latency_us.samples()) {
      result.total.latency_us.Add(s);
    }
  }
  return result;
}

void Run(ExperimentContext& ctx) {
  const std::vector<std::string> fixed_arms = {"lz4", "snappy", "zstd-1", "zstd-3"};
  const uint32_t threads = 2;
  const size_t chunk_bytes = ctx.quick() ? 32 * 1024 : 64 * 1024;
  // Multiple of the 5-point entropy dial so every class keeps the same share.
  const size_t chunks = ctx.Pick(30, 150);
  std::vector<MixedChunk> corpus = GenerateMixedCorpus(chunks, chunk_bytes, /*seed=*/0xADA9);
  // Model warm-up for the AUTO arm (and identical extra load for fairness):
  // one dial cycle fed to every arm before its measured pass.
  std::vector<MixedChunk> warmup(corpus.begin(), corpus.begin() + std::min<size_t>(5, chunks));

  svc::ServerOptions sopts;
  sopts.adapt.candidates = fixed_arms;
  svc::ServiceServer server(sopts);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Note("service failed to start: " + started.ToString());
    return;
  }

  std::vector<ArmResult> arms;
  for (const std::string& arm : fixed_arms) {
    RunArm(server.port(), arm, threads, warmup);
    arms.push_back(RunArm(server.port(), arm, threads, corpus));
  }
  RunArm(server.port(), "auto", threads, warmup);
  arms.push_back(RunArm(server.port(), "auto", threads, corpus));
  server.Stop();
  svc::ServiceStats auto_stats = server.Snapshot();

  // The bypass-only arm runs on its own server so mode is a clean variable.
  svc::ServerOptions bopts;
  bopts.adapt.mode = adapt::AdaptMode::kBypassOnly;
  svc::ServiceServer bypass_server(bopts);
  if (bypass_server.Start().ok()) {
    RunArm(bypass_server.port(), "auto", threads, warmup);
    ArmResult bypass = RunArm(bypass_server.port(), "auto", threads, corpus);
    bypass.arm = "bypass-only";
    arms.push_back(std::move(bypass));
    bypass_server.Stop();
  }

  obs::Table& table = ctx.AddTable(
      "policy_arms", "Mixed entropy-dial corpus under each policy arm",
      {Column("arm", "arm"), Column("mbps", "MB/s", 1), Column("ratio", "ratio", 3),
       Column("p99_us", "p99 us", 1), Column("stored_share", "stored", 3),
       Column("verify_fail", "verify fail", 0)});
  for (const ArmResult& arm : arms) {
    SampleSet latency = arm.total.latency_us;
    table.AddRow({arm.arm, arm.total.mbps(), arm.total.ratio(), latency.Percentile(99),
                  arm.total.requests > 0 ? static_cast<double>(arm.total.stored) /
                                               static_cast<double>(arm.total.requests)
                                         : 0,
                  static_cast<double>(arm.verify_failures)});
    const std::string key = "arm." + arm.arm + ".";
    ctx.metrics().Gauge(key + "mbps", arm.total.mbps());
    ctx.metrics().Gauge(key + "ratio", arm.total.ratio());
    ctx.metrics().Gauge(key + "p99_us", latency.Percentile(99));
    ctx.metrics().Count(key + "verify_failures", arm.verify_failures);
  }

  obs::Table& routing = ctx.AddTable(
      "per_class", "Per-(arm, entropy class) throughput, ratio and routing",
      {Column("arm", "arm"), Column("class", "class"), Column("mbps", "MB/s", 1),
       Column("ratio", "ratio", 3), Column("p99_us", "p99 us", 1),
       Column("routed", "routed to")});
  for (const ArmResult& arm : arms) {
    for (const char* klass : kClasses) {
      auto it = arm.per_class.find(klass);
      if (it == arm.per_class.end()) {
        continue;
      }
      const ClassAgg& agg = it->second;
      std::string routed;
      for (const auto& [codec_name, n] : agg.routed) {
        if (!routed.empty()) {
          routed += " ";
        }
        routed += codec_name + ":" + std::to_string(n);
      }
      SampleSet latency = agg.latency_us;
      routing.AddRow({arm.arm, std::string(klass), agg.mbps(), agg.ratio(),
                      latency.Percentile(99), routed});
      const std::string key = "arm." + arm.arm + ".class." + klass + ".";
      ctx.metrics().Gauge(key + "mbps", agg.mbps());
      ctx.metrics().Gauge(key + "ratio", agg.ratio());
      for (const auto& [codec_name, n] : agg.routed) {
        ctx.metrics().Count(key + "routed." + codec_name, n);
      }
    }
  }

  // Headline acceptance gauges. Fixed-best/worst are chosen by measured
  // throughput on THIS corpus, so the comparison self-calibrates.
  const ArmResult* auto_arm = nullptr;
  double best_fixed = 0;
  double worst_fixed = 0;
  for (const ArmResult& arm : arms) {
    if (arm.arm == "auto") {
      auto_arm = &arm;
    }
    if (std::find(fixed_arms.begin(), fixed_arms.end(), arm.arm) != fixed_arms.end()) {
      const double mbps = arm.total.mbps();
      best_fixed = std::max(best_fixed, mbps);
      worst_fixed = worst_fixed == 0 ? mbps : std::min(worst_fixed, mbps);
    }
  }
  if (auto_arm != nullptr && best_fixed > 0 && worst_fixed > 0) {
    const double auto_mbps = auto_arm->total.mbps();
    const double bypass_share =
        auto_arm->total.requests > 0 ? static_cast<double>(auto_arm->total.stored) /
                                           static_cast<double>(auto_arm->total.requests)
                                     : 0;
    ctx.metrics().Gauge("adaptive.bypass_share", bypass_share);
    ctx.metrics().Gauge("adaptive.auto_vs_fixed_best", auto_mbps / best_fixed);
    ctx.metrics().Gauge("adaptive.auto_vs_fixed_worst", auto_mbps / worst_fixed);
  }
  ExportServiceStats(auto_stats, "svc.", &ctx.metrics());

  ctx.Note("Every request is verified by a decompress + byte compare through the codec\n"
           "the response names (the stored passthrough for bypassed chunks). Fixed-best\n"
           "and fixed-worst are picked by measured MB/s on this corpus, not by prior.");
}

CDPU_REGISTER_EXPERIMENT("adaptive_policy", "Adaptive compression policy",
                         "Entropy-dial corpus x policy arms: fixed codecs vs AUTO vs "
                         "bypass-only, with per-class routing shares",
                         Run);

}  // namespace
}  // namespace cdpu
