// Figure 2: Zstd execution-time breakdown across compression granularities
// (4K-128K), levels, and data entropy. Reproduced with the instrumented
// MiniZstd codec: per-stage wall-clock shares for LZ77 (match search),
// Huffman (literals) and FSE (sequences).

#include "bench/harness/experiment.h"
#include "src/codecs/mini_zstd.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct Shares {
  double lz77 = 0;
  double huffman = 0;
  double fse = 0;
  double total_ms = 0;
};

Shares Measure(int level, size_t chunk, double entropy_bits, size_t input_bytes) {
  MiniZstdCodec codec(level);
  std::vector<uint8_t> data = entropy_bits < 0
                                  ? GenerateTextLike(input_bytes, 42)
                                  : GenerateWithEntropy(entropy_bits, input_bytes, 42);
  uint64_t lz = 0;
  uint64_t huff = 0;
  uint64_t fse = 0;
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    ByteVec out;
    Result<size_t> r = codec.Compress(ByteSpan(data.data() + off, chunk), &out);
    if (!r.ok()) {
      continue;
    }
    lz += codec.last_timings().lz77_ns;
    huff += codec.last_timings().huffman_ns;
    fse += codec.last_timings().fse_ns;
  }
  double total = static_cast<double>(lz + huff + fse);
  Shares s;
  if (total > 0) {
    s.lz77 = 100.0 * static_cast<double>(lz) / total;
    s.huffman = 100.0 * static_cast<double>(huff) / total;
    s.fse = 100.0 * static_cast<double>(fse) / total;
    s.total_ms = total / 1e6;
  }
  return s;
}

std::vector<Column> ShareColumns(const char* key, const char* label) {
  return {Column(key, label, key == std::string("entropy") ? 1 : 0),
          Column("lz77", "LZ77 %", 1), Column("huffman", "Huffman %", 1),
          Column("fse", "FSE %", 1), Column("total_ms", "total ms", 2)};
}

void Run(ExperimentContext& ctx) {
  const size_t input = ctx.Pick(256 * 1024, 1 << 20);

  obs::Table& by_level =
      ctx.AddTable("by_level", "(a) By compression level (text-like data, 64 KB chunks)",
                   ShareColumns("level", "level"));
  for (int level : {1, 3, 6, 9, 12}) {
    Shares s = Measure(level, 64 * 1024, -1, input);
    by_level.AddRow({level, s.lz77, s.huffman, s.fse, s.total_ms});
  }

  obs::Table& by_chunk =
      ctx.AddTable("by_chunk", "(b) By chunk size (text-like data, level 3)",
                   ShareColumns("chunk_kb", "chunk KB"));
  for (size_t chunk : {4u, 16u, 64u, 128u}) {
    Shares s = Measure(3, chunk * 1024, -1, input);
    by_chunk.AddRow({static_cast<uint64_t>(chunk), s.lz77, s.huffman, s.fse, s.total_ms});
  }

  obs::Table& by_entropy =
      ctx.AddTable("by_entropy", "(c) By data entropy (level 3, 64 KB chunks)",
                   ShareColumns("entropy", "H bits/B"));
  for (double h : {1.0, 2.0, 4.0, 6.0, 8.0}) {
    Shares s = Measure(3, 64 * 1024, h, input);
    by_entropy.AddRow({h, s.lz77, s.huffman, s.fse, s.total_ms});
  }
  ctx.Note("Paper shape: LZ77 dominates and its share grows with level;\n"
           "entropy-coding share varies non-linearly with data randomness.");
}

CDPU_REGISTER_EXPERIMENT("fig02", "Figure 2",
                         "MiniZstd stage breakdown vs chunk size, level, entropy", Run);

}  // namespace
}  // namespace cdpu
