// Figure 2: Zstd execution-time breakdown across compression granularities
// (4K-128K), levels, and data entropy. Reproduced with the instrumented
// MiniZstd codec: per-stage wall-clock shares for LZ77 (match search),
// Huffman (literals) and FSE (sequences).

#include "bench/bench_util.h"
#include "src/codecs/mini_zstd.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

struct Shares {
  double lz77 = 0;
  double huffman = 0;
  double fse = 0;
  double total_ms = 0;
};

Shares Measure(int level, size_t chunk, double entropy_bits) {
  MiniZstdCodec codec(level);
  std::vector<uint8_t> data = entropy_bits < 0
                                  ? GenerateTextLike(1 << 20, 42)
                                  : GenerateWithEntropy(entropy_bits, 1 << 20, 42);
  uint64_t lz = 0;
  uint64_t huff = 0;
  uint64_t fse = 0;
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    ByteVec out;
    Result<size_t> r = codec.Compress(ByteSpan(data.data() + off, chunk), &out);
    if (!r.ok()) {
      continue;
    }
    lz += codec.last_timings().lz77_ns;
    huff += codec.last_timings().huffman_ns;
    fse += codec.last_timings().fse_ns;
  }
  double total = static_cast<double>(lz + huff + fse);
  Shares s;
  if (total > 0) {
    s.lz77 = 100.0 * static_cast<double>(lz) / total;
    s.huffman = 100.0 * static_cast<double>(huff) / total;
    s.fse = 100.0 * static_cast<double>(fse) / total;
    s.total_ms = total / 1e6;
  }
  return s;
}

void Run() {
  PrintHeader("Figure 2", "MiniZstd stage breakdown vs chunk size, level, entropy");

  std::printf("\n(a) By compression level (text-like data, 64 KB chunks)\n");
  PrintRow({"level", "LZ77 %", "Huffman %", "FSE %", "total ms"});
  PrintRule(5);
  for (int level : {1, 3, 6, 9, 12}) {
    Shares s = Measure(level, 64 * 1024, -1);
    PrintRow({Fmt(level, 0), Fmt(s.lz77, 1), Fmt(s.huffman, 1), Fmt(s.fse, 1),
              Fmt(s.total_ms, 2)});
  }

  std::printf("\n(b) By chunk size (text-like data, level 3)\n");
  PrintRow({"chunk KB", "LZ77 %", "Huffman %", "FSE %", "total ms"});
  PrintRule(5);
  for (size_t chunk : {4u, 16u, 64u, 128u}) {
    Shares s = Measure(3, chunk * 1024, -1);
    PrintRow({Fmt(chunk, 0), Fmt(s.lz77, 1), Fmt(s.huffman, 1), Fmt(s.fse, 1),
              Fmt(s.total_ms, 2)});
  }

  std::printf("\n(c) By data entropy (level 3, 64 KB chunks)\n");
  PrintRow({"H bits/B", "LZ77 %", "Huffman %", "FSE %", "total ms"});
  PrintRule(5);
  for (double h : {1.0, 2.0, 4.0, 6.0, 8.0}) {
    Shares s = Measure(3, 64 * 1024, h);
    PrintRow({Fmt(h, 1), Fmt(s.lz77, 1), Fmt(s.huffman, 1), Fmt(s.fse, 1),
              Fmt(s.total_ms, 2)});
  }
  std::printf("\nPaper shape: LZ77 dominates and its share grows with level;\n"
              "entropy-coding share varies non-linearly with data randomness.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
