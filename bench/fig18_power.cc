// Figure 18: power efficiency (MB/J) at the microbenchmark level and
// through the Btrfs-like filesystem, with CPU utilisation. Finding 12: the
// DPZip module's ~50x standalone advantage compresses to ~3.5x at system
// level; Finding 13: DPZip leads at every level (paper: 169.87 MB/J device
// compress, 288.72 multi-device, 75.63 Btrfs write).

#include <memory>

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/fs/btrfs_sim.h"
#include "src/hw/device_configs.h"
#include "src/hw/power.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr uint64_t kBytes = 4096;

struct EffRow {
  double c_mbj;
  double d_mbj;
  double cpu_util;
};

EffRow DeviceEfficiency(const CdpuConfig& cfg, uint32_t threads, double cpu_util,
                        uint64_t requests) {
  CdpuDevice dev(cfg);
  EffRow row{0, 0, cpu_util};
  for (bool compress : {true, false}) {
    CdpuOp op = compress ? CdpuOp::kCompress : CdpuOp::kDecompress;
    ClosedLoopResult r = dev.RunClosedLoop(op, requests, kBytes, 0.45, threads);
    EnergyMeter meter;
    meter.AddDevice(cfg.name, cfg.active_power_w, cfg.idle_power_w,
                    static_cast<SimNanos>(r.engine_utilization *
                                          static_cast<double>(r.makespan)),
                    r.makespan);
    meter.AddCpu(cpu_util, r.makespan);
    double mbj = EnergyMeter::MbPerJoule(requests * kBytes, meter.NetJoules());
    (compress ? row.c_mbj : row.d_mbj) = mbj;
  }
  return row;
}

void Run(ExperimentContext& ctx) {
  const uint64_t requests = ctx.Pick(3000, 20000);

  obs::Table& micro = ctx.AddTable(
      "microbench_mbj",
      "(a) Microbench MB/J (paper: DPZip 169.87/165.65, multi-dev 288.72;\n"
      "    CPU Deflate 41.81; QAT hurt by polling CPU time)",
      {Column("scheme"), Column("c_mbj", "C MB/J", 1), Column("d_mbj", "D MB/J", 1),
       Column("cpu_util", "CPU util", 0, "%")});
  // CPU utilisation during the runs: software uses all threads; QAT burns
  // polling cores; DPZip needs almost none (paper: <3% vs >14%).
  for (const bench::DeviceCase& c : bench::HardwareComparisonCases()) {
    EffRow row = DeviceEfficiency(c.config, c.threads, c.cpu_util, requests);
    micro.AddRow({c.name, row.c_mbj, row.d_mbj, row.cpu_util * 100});
  }
  {
    // Multi-device DPZip: 3 drives, energy scales with devices but per-drive
    // utilisation drops -> efficiency improves.
    ClosedLoopResult r = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kCompress, requests,
                                        kBytes, 0.45, 48);
    EnergyMeter meter;
    CdpuConfig cfg = DpzipCdpuConfig();
    for (int d = 0; d < 3; ++d) {
      meter.AddDevice(cfg.name, cfg.active_power_w, cfg.idle_power_w,
                      static_cast<SimNanos>(r.engine_utilization *
                                            static_cast<double>(r.makespan)),
                      r.makespan);
    }
    meter.AddCpu(0.03, r.makespan);
    micro.AddRow({"3x dpzip", EnergyMeter::MbPerJoule(requests * kBytes, meter.NetJoules()),
                  obs::Json(), 3.0});
  }

  obs::Table& fs_tbl = ctx.AddTable(
      "btrfs_mbj",
      "(b) Btrfs-level MB/J (paper: DPZip 75.63 write / 69.10 read;\n"
      "    QAT ~11.75 write)",
      {Column("scheme"), Column("write_mbj", "write MB/J", 1),
       Column("cpu_util", "cpu util", 0, "%")});
  const size_t file_bytes = ctx.Pick(1, 4) * 1024 * 1024;
  for (CompressionScheme scheme :
       {CompressionScheme::kCpu, CompressionScheme::kQat4xxx, CompressionScheme::kDpCsd,
        CompressionScheme::kOff}) {
    auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
    BtrfsSim fs(BtrfsConfig{}, ssd.get(), MakeSchemeBackend(scheme));
    std::vector<uint8_t> data = GenerateDbTableLike(file_bytes, 7);
    SimNanos t = 0;
    for (size_t off = 0; off < file_bytes; off += 131072) {
      Result<SimNanos> w = fs.Write(off, ByteSpan(data.data() + off, 131072), t);
      if (!w.ok()) {
        break;
      }
      t = *w;
    }
    Result<SimNanos> s = fs.Sync(t);
    if (!s.ok()) {
      continue;
    }
    double cpu_util = scheme == CompressionScheme::kCpu    ? 0.8
                      : scheme == CompressionScheme::kQat4xxx ? 0.14
                                                              : 0.03;
    EnergyMeter meter;
    meter.AddCpu(cpu_util, *s);
    CdpuConfig dev_cfg = scheme == CompressionScheme::kQat4xxx ? Qat4xxxConfig()
                         : scheme == CompressionScheme::kDpCsd ? DpzipCdpuConfig()
                                                               : CpuSoftwareConfig("deflate");
    if (scheme == CompressionScheme::kQat4xxx || scheme == CompressionScheme::kDpCsd) {
      meter.AddDevice(dev_cfg.name, dev_cfg.active_power_w, dev_cfg.idle_power_w, *s / 2, *s);
    }
    fs_tbl.AddRow({SchemeName(scheme),
                   EnergyMeter::MbPerJoule(file_bytes, meter.NetJoules()), cpu_util * 100});
  }
  ctx.Note("Paper shape: DPZip ~50x module-level over CPU but ~3.5x end-to-end\n"
           "(Finding 12); DP-CSD best at device, system and application level.");
}

CDPU_REGISTER_EXPERIMENT("fig18", "Figure 18",
                         "Power efficiency: microbench and Btrfs level", Run);

}  // namespace
}  // namespace cdpu
