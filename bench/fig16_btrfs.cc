// Figure 16: Btrfs-like filesystem — (a) buffered-write + sync throughput
// and (b) 4 KB random read latency per scheme. Finding 9: 128 KB compressed
// extents amplify small reads; Finding 11: async compression + checksumming
// + writeback copies penalise the filesystem layer.

#include <memory>

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/common/rng.h"
#include "src/fs/btrfs_sim.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr size_t kIoBytes = 128 * 1024;

struct FsOutcome {
  double write_gbps;
  double read_lat_us;
  double stored_mb;
};

FsOutcome RunScheme(CompressionScheme scheme, size_t file_bytes, int reads) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
  BtrfsSim fs(BtrfsConfig{}, ssd.get(), MakeSchemeBackend(scheme));
  std::vector<uint8_t> data = GenerateDbTableLike(file_bytes, 21);

  SimNanos t = 0;
  for (size_t off = 0; off < data.size(); off += kIoBytes) {
    Result<SimNanos> w = fs.Write(off, ByteSpan(data.data() + off, kIoBytes), t);
    if (!w.ok()) {
      return {0, 0, 0};
    }
    t = *w;
  }
  Result<SimNanos> s = fs.Sync(t);
  if (!s.ok()) {
    return {0, 0, 0};
  }
  double write_gbps = GbPerSec(file_bytes, *s);

  // Cold 4 KB random reads.
  Rng rng(5);
  SimNanos rt = *s;
  double total_us = 0;
  for (int i = 0; i < reads; ++i) {
    uint64_t off = rng.Uniform(file_bytes / 4096) * 4096;
    Result<BtrfsSim::ReadOutcome> r = fs.Read(off, 4096, rt);
    if (!r.ok()) {
      continue;
    }
    total_us += static_cast<double>(r->completion - rt) / 1e3;
    rt = r->completion;
  }
  return {write_gbps, total_us / reads, static_cast<double>(fs.stored_bytes()) / 1e6};
}

void Run(ExperimentContext& ctx) {
  const size_t file_bytes = ctx.Pick(1, 4) * 1024 * 1024;
  const int reads = static_cast<int>(ctx.Pick(32, 64));
  obs::Table& t = ctx.AddTable(
      "fs_outcome", "",
      {Column("scheme"), Column("write_gbps", "write GB/s"), Column("read_us", "read us", 1),
       Column("stored_mb", "stored MB")});
  for (CompressionScheme scheme : bench::AllSchemes()) {
    FsOutcome o = RunScheme(scheme, file_bytes, reads);
    t.AddRow({SchemeName(scheme), o.write_gbps, o.read_lat_us, o.stored_mb});
  }
  ctx.Note("Paper shape: DP-CSD highest write throughput; QAT in the FS layer\n"
           "loses to buffered-IO copies; CPU Deflate worst. Reads: compressed\n"
           "128 KB extents inflate 4K random-read latency (572 us for CPU in the\n"
           "paper); DP-CSD/OFF avoid the amplification (~5 us overhead).");
}

CDPU_REGISTER_EXPERIMENT("fig16", "Figure 16",
                         "Btrfs-like FS: write throughput and 4K read latency", Run);

}  // namespace
}  // namespace cdpu
