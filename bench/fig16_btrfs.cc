// Figure 16: Btrfs-like filesystem — (a) buffered-write + sync throughput
// and (b) 4 KB random read latency per scheme. Finding 9: 128 KB compressed
// extents amplify small reads; Finding 11: async compression + checksumming
// + writeback copies penalise the filesystem layer.

#include <memory>

#include "bench/bench_util.h"
#include "src/fs/btrfs_sim.h"
#include "src/common/rng.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

constexpr size_t kFileBytes = 4 * 1024 * 1024;
constexpr size_t kIoBytes = 128 * 1024;

struct FsOutcome {
  double write_gbps;
  double read_lat_us;
  double stored_mb;
};

FsOutcome RunScheme(CompressionScheme scheme) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
  BtrfsSim fs(BtrfsConfig{}, ssd.get(), MakeSchemeBackend(scheme));
  std::vector<uint8_t> data = GenerateDbTableLike(kFileBytes, 21);

  SimNanos t = 0;
  for (size_t off = 0; off < data.size(); off += kIoBytes) {
    Result<SimNanos> w = fs.Write(off, ByteSpan(data.data() + off, kIoBytes), t);
    if (!w.ok()) {
      return {0, 0, 0};
    }
    t = *w;
  }
  Result<SimNanos> s = fs.Sync(t);
  if (!s.ok()) {
    return {0, 0, 0};
  }
  double write_gbps = GbPerSec(kFileBytes, *s);

  // Cold 4 KB random reads.
  Rng rng(5);
  SimNanos rt = *s;
  double total_us = 0;
  constexpr int kReads = 64;
  for (int i = 0; i < kReads; ++i) {
    uint64_t off = rng.Uniform(kFileBytes / 4096) * 4096;
    Result<BtrfsSim::ReadOutcome> r = fs.Read(off, 4096, rt);
    if (!r.ok()) {
      continue;
    }
    total_us += static_cast<double>(r->completion - rt) / 1e3;
    rt = r->completion;
  }
  return {write_gbps, total_us / kReads,
          static_cast<double>(fs.stored_bytes()) / 1e6};
}

void Run() {
  PrintHeader("Figure 16", "Btrfs-like FS: write throughput and 4K read latency");
  PrintRow({"scheme", "write GB/s", "read us", "stored MB"});
  PrintRule(4);
  for (CompressionScheme scheme :
       {CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat8970,
        CompressionScheme::kQat4xxx, CompressionScheme::kCsd2000, CompressionScheme::kDpCsd}) {
    FsOutcome o = RunScheme(scheme);
    PrintRow({SchemeName(scheme), Fmt(o.write_gbps, 2), Fmt(o.read_lat_us, 1),
              Fmt(o.stored_mb, 2)});
  }
  std::printf("\nPaper shape: DP-CSD highest write throughput; QAT in the FS layer\n"
              "loses to buffered-IO copies; CPU Deflate worst. Reads: compressed\n"
              "128 KB extents inflate 4K random-read latency (572 us for CPU in the\n"
              "paper); DP-CSD/OFF avoid the amplification (~5 us overhead).\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
