// Ablation (paper §6, future work implemented): preset dictionary
// compression against the 4 KB-granularity ratio penalty, and the FSE vs
// Huffman literal-engine choice. The paper earmarks dictionaries as the
// mitigation for DPZip's fixed page granularity; this bench quantifies the
// recovered ratio per data family and dictionary size.

#include <memory>

#include "bench/bench_util.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

double MeanPageRatio(DpzipCodec* codec, const std::vector<uint8_t>& data) {
  double sum = 0;
  size_t pages = 0;
  for (size_t off = 0; off + 4096 <= data.size(); off += 4096) {
    sum += codec->MeasureRatio(ByteSpan(data.data() + off, 4096));
    ++pages;
  }
  return pages == 0 ? 1.0 : sum / static_cast<double>(pages);
}

void Run() {
  PrintHeader("Ablation", "Preset dictionaries and literal-engine choice (4 KB pages)");

  struct Family {
    const char* name;
    std::vector<uint8_t> (*gen)(size_t, uint64_t);
  };
  std::vector<Family> families = {
      {"text", GenerateTextLike},       {"db-table", GenerateDbTableLike},
      {"binary", GenerateBinaryLike},   {"xml", GenerateXmlLike},
      {"source", GenerateSourceLike},
  };

  std::printf("\n(a) Same-domain preset dictionary (8 KB) vs none (ratio %%)\n");
  PrintRow({"family", "no dict", "with dict", "gain pp"});
  PrintRule(4);
  for (const Family& f : families) {
    std::vector<uint8_t> data = f.gen(128 * 1024, 900);
    DpzipCodec plain;
    DpzipCodecConfig cfg;
    cfg.dictionary = f.gen(8192, 901);  // trained on the same family
    DpzipCodec with_dict(cfg);
    double r0 = MeanPageRatio(&plain, data) * 100;
    double r1 = MeanPageRatio(&with_dict, data) * 100;
    PrintRow({f.name, Fmt(r0, 1), Fmt(r1, 1), Fmt(r0 - r1, 1)});
  }

  std::printf("\n(b) Dictionary size sweep (db-table pages)\n");
  PrintRow({"dict KB", "ratio %", "gain pp"});
  PrintRule(3);
  std::vector<uint8_t> data = GenerateDbTableLike(128 * 1024, 902);
  DpzipCodec plain;
  double base = MeanPageRatio(&plain, data) * 100;
  for (size_t kb : {0u, 2u, 4u, 8u, 16u, 32u}) {
    if (kb == 0) {
      PrintRow({"0", Fmt(base, 1), "0.0"});
      continue;
    }
    DpzipCodecConfig cfg;
    cfg.dictionary = GenerateDbTableLike(kb * 1024, 903);
    DpzipCodec codec(cfg);
    double r = MeanPageRatio(&codec, data) * 100;
    PrintRow({Fmt(kb, 0), Fmt(r, 1), Fmt(base - r, 1)});
  }

  std::printf("\n(c) Cross-domain dictionary (mismatched training data)\n");
  PrintRow({"dict domain", "ratio %", "gain pp"});
  PrintRule(3);
  for (const Family& f : families) {
    DpzipCodecConfig cfg;
    cfg.dictionary = f.gen(8192, 904);
    DpzipCodec codec(cfg);
    double r = MeanPageRatio(&codec, data) * 100;
    PrintRow({f.name, Fmt(r, 1), Fmt(base - r, 1)});
  }

  std::printf("\n(d) Literal entropy engine: Huffman (11-bit) vs FSE\n");
  PrintRow({"family", "huffman %", "fse %"});
  PrintRule(3);
  for (const Family& f : families) {
    std::vector<uint8_t> d = f.gen(128 * 1024, 905);
    DpzipCodec huffman;
    DpzipCodecConfig cfg;
    cfg.entropy = DpzipEntropyMode::kFse;
    DpzipCodec fse(cfg);
    PrintRow({f.name, Fmt(MeanPageRatio(&huffman, d) * 100, 1),
              Fmt(MeanPageRatio(&fse, d) * 100, 1)});
  }

  std::printf("\n§6: dictionaries recover part of the 4 KB-granularity ratio loss\n"
              "when trained in-domain; mismatched dictionaries help little. FSE\n"
              "and the capped Huffman land within ~1 pp of each other.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
