// Ablation (paper §6, future work implemented): preset dictionary
// compression against the 4 KB-granularity ratio penalty, and the FSE vs
// Huffman literal-engine choice. The paper earmarks dictionaries as the
// mitigation for DPZip's fixed page granularity; this bench quantifies the
// recovered ratio per data family and dictionary size.

#include <memory>

#include "bench/harness/experiment.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

double MeanPageRatio(DpzipCodec* codec, const std::vector<uint8_t>& data) {
  double sum = 0;
  size_t pages = 0;
  for (size_t off = 0; off + 4096 <= data.size(); off += 4096) {
    sum += codec->MeasureRatio(ByteSpan(data.data() + off, 4096));
    ++pages;
  }
  return pages == 0 ? 1.0 : sum / static_cast<double>(pages);
}

struct Family {
  const char* name;
  std::vector<uint8_t> (*gen)(size_t, uint64_t);
};

const std::vector<Family>& Families() {
  static const std::vector<Family> kFamilies = {
      {"text", GenerateTextLike},     {"db-table", GenerateDbTableLike},
      {"binary", GenerateBinaryLike}, {"xml", GenerateXmlLike},
      {"source", GenerateSourceLike},
  };
  return kFamilies;
}

void Run(ExperimentContext& ctx) {
  const size_t data_bytes = ctx.Pick(64, 128) * 1024;

  obs::Table& same = ctx.AddTable(
      "same_domain", "(a) Same-domain preset dictionary (8 KB) vs none (ratio %)",
      {Column("family"), Column("no_dict", "no dict", 1), Column("with_dict", "with dict", 1),
       Column("gain_pp", "gain pp", 1)});
  for (const Family& f : Families()) {
    std::vector<uint8_t> data = f.gen(data_bytes, 900);
    DpzipCodec plain;
    DpzipCodecConfig cfg;
    cfg.dictionary = f.gen(8192, 901);  // trained on the same family
    DpzipCodec with_dict(cfg);
    double r0 = MeanPageRatio(&plain, data) * 100;
    double r1 = MeanPageRatio(&with_dict, data) * 100;
    same.AddRow({f.name, r0, r1, r0 - r1});
  }

  obs::Table& size_tbl = ctx.AddTable(
      "dict_size", "(b) Dictionary size sweep (db-table pages)",
      {Column("dict_kb", "dict KB", 0), Column("ratio_pct", "ratio %", 1),
       Column("gain_pp", "gain pp", 1)});
  std::vector<uint8_t> data = GenerateDbTableLike(data_bytes, 902);
  DpzipCodec plain;
  double base = MeanPageRatio(&plain, data) * 100;
  for (size_t kb : {0u, 2u, 4u, 8u, 16u, 32u}) {
    if (kb == 0) {
      size_tbl.AddRow({0u, base, 0.0});
      continue;
    }
    DpzipCodecConfig cfg;
    cfg.dictionary = GenerateDbTableLike(kb * 1024, 903);
    DpzipCodec codec(cfg);
    double r = MeanPageRatio(&codec, data) * 100;
    size_tbl.AddRow({kb, r, base - r});
  }

  obs::Table& cross = ctx.AddTable(
      "cross_domain", "(c) Cross-domain dictionary (mismatched training data)",
      {Column("dict_domain", "dict domain"), Column("ratio_pct", "ratio %", 1),
       Column("gain_pp", "gain pp", 1)});
  for (const Family& f : Families()) {
    DpzipCodecConfig cfg;
    cfg.dictionary = f.gen(8192, 904);
    DpzipCodec codec(cfg);
    double r = MeanPageRatio(&codec, data) * 100;
    cross.AddRow({f.name, r, base - r});
  }

  obs::Table& entropy = ctx.AddTable(
      "literal_engine", "(d) Literal entropy engine: Huffman (11-bit) vs FSE",
      {Column("family"), Column("huffman_pct", "huffman %", 1), Column("fse_pct", "fse %", 1)});
  for (const Family& f : Families()) {
    std::vector<uint8_t> d = f.gen(data_bytes, 905);
    DpzipCodec huffman;
    DpzipCodecConfig cfg;
    cfg.entropy = DpzipEntropyMode::kFse;
    DpzipCodec fse(cfg);
    entropy.AddRow({f.name, MeanPageRatio(&huffman, d) * 100, MeanPageRatio(&fse, d) * 100});
  }

  ctx.Note("§6: dictionaries recover part of the 4 KB-granularity ratio loss\n"
           "when trained in-domain; mismatched dictionaries help little. FSE\n"
           "and the capped Huffman land within ~1 pp of each other.");
}

CDPU_REGISTER_EXPERIMENT("ablation_dictionary", "Ablation",
                         "Preset dictionaries and literal-engine choice (4 KB pages)", Run);

}  // namespace
}  // namespace cdpu
