// Finding 14: multi-device scalability. DP-CSD scales near-linearly with
// drive count (paper: 12.5 GB/s -> 98.6 GB/s at 8 drives, 64 KB chunks);
// QAT 4xxx is bounded by CPU sockets (max ~4 per server, 4.77 -> 9.54 GB/s
// for two); QAT 8970 scales with PCIe slots but contends for them.
//
// The final section replays the single-device thread sweep through the
// offload runtime: real client threads submitting through queue pairs and
// contending for the device's 64 descriptor slots, instead of the serial
// closed-loop replay above it.

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/hw/device_configs.h"
#include "src/runtime/stats_export.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr uint64_t k64K = 65536;

void Run(ExperimentContext& ctx) {
  const uint64_t fleet_requests = ctx.Pick(1500, 8000);
  const uint64_t sweep_requests = ctx.Pick(1500, 8000);

  obs::Table& fleet = ctx.AddTable(
      "device_scaling", "Multi-device compression scaling (64 KB chunks)",
      {Column("devices", "", 0), Column("dp_csd", "dp-csd GB/s"),
       Column("qat_4xxx", "qat-4xxx GB/s"), Column("qat_8970", "qat-8970 GB/s")});
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    ClosedLoopResult dpcsd = RunDeviceFleet(DpzipCdpuConfig(), n, CdpuOp::kCompress,
                                            fleet_requests, k64K, 0.40, 16 * n);
    // QAT 4xxx: at most 2 devices on this dual-socket platform (4 on quad).
    obs::Json qat4 = n <= 2
                         ? obs::Json(RunDeviceFleet(Qat4xxxConfig(), n, CdpuOp::kCompress,
                                                    fleet_requests, k64K, 0.40, 64 * n)
                                         .gbps)
                         : obs::Json("n/a (sockets)");
    ClosedLoopResult qat8 = RunDeviceFleet(Qat8970Config(), n, CdpuOp::kCompress,
                                           fleet_requests, k64K, 0.40, 64 * n);
    fleet.AddRow({n, dpcsd.gbps, std::move(qat4), qat8.gbps});
  }

  obs::Table& threads_tbl = ctx.AddTable(
      "thread_scaling", "Thread scaling on one device (4 KB compress GB/s)",
      {Column("threads", "", 0), Column("dp_csd", "dp-csd"), Column("qat_4xxx", "qat-4xxx"),
       Column("qat_8970", "qat-8970")});
  CdpuDevice dpcsd(DpzipCdpuConfig());
  CdpuDevice qat4(Qat4xxxConfig());
  CdpuDevice qat8(Qat8970Config());
  for (uint32_t t : {1u, 8u, 32u, 64u, 128u}) {
    threads_tbl.AddRow(
        {t, dpcsd.RunClosedLoop(CdpuOp::kCompress, sweep_requests, 4096, 0.45, t).gbps,
         qat4.RunClosedLoop(CdpuOp::kCompress, sweep_requests, 4096, 0.45, t).gbps,
         qat8.RunClosedLoop(CdpuOp::kCompress, sweep_requests, 4096, 0.45, t).gbps});
  }

  obs::Table& rt = ctx.AddTable(
      "runtime_scaling",
      "Thread scaling through the offload runtime (4 KB compress,\n"
      "real threads contending for the 64 descriptor slots)",
      {Column("threads", "", 0), Column("gbps", "qat-8970 GB/s"),
       Column("mean_lat_us", "mean lat us", 1), Column("ceil_delays", "ceil delays", 0),
       Column("max_inflight", "max inflight", 0)});
  const uint64_t rt_jobs = ctx.Pick(800, 3000);
  for (uint32_t t : {1u, 8u, 32u, 64u, 96u, 128u}) {
    bench::RuntimeSweepParams params;
    params.device = Qat8970Config();
    params.threads = t;
    params.jobs_per_thread = rt_jobs / t + 8;
    params.bytes = 4096;
    params.ratio = 0.45;
    RuntimeStats s = bench::RunRuntimeClosedLoop(params);
    rt.AddRow({t, s.sim_gbps(), s.device_latency_us.mean(), s.ceiling_delays, s.max_inflight});
    if (t == 64) {
      // Full structured snapshot for one representative point.
      ExportRuntimeStats(s, "runtime_t64", &ctx.metrics());
    }
  }

  ctx.Note("Paper shape: DP-CSD near-linear to 8 devices (98.6 GB/s); QAT\n"
           "throughput plateaus past its 64-deep queues and socket limits.\n"
           "Runtime sweep: throughput climbs with threads until the 64-slot\n"
           "concurrency ceiling saturates, then latency absorbs the excess.");
}

CDPU_REGISTER_EXPERIMENT("fig14b", "Finding 14",
                         "Multi-device and thread scaling, incl. offload runtime", Run);

}  // namespace
}  // namespace cdpu
