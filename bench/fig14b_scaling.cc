// Finding 14: multi-device scalability. DP-CSD scales near-linearly with
// drive count (paper: 12.5 GB/s -> 98.6 GB/s at 8 drives, 64 KB chunks);
// QAT 4xxx is bounded by CPU sockets (max ~4 per server, 4.77 -> 9.54 GB/s
// for two); QAT 8970 scales with PCIe slots but contends for them.
//
// The final section replays the single-device thread sweep through the
// offload runtime: real client threads submitting through queue pairs and
// contending for the device's 64 descriptor slots, instead of the serial
// closed-loop replay above it.

#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"

namespace cdpu {
namespace {

constexpr uint64_t k64K = 65536;
constexpr uint64_t kRequests = 8000;

// Closed-loop clients chained in simulated time: each thread's next arrival
// is its previous request's simulated completion.
RuntimeStats RunViaRuntime(const CdpuConfig& cfg, uint32_t threads, uint64_t jobs_per_thread,
                           uint64_t bytes, double r) {
  RuntimeOptions opts;
  opts.device = cfg;
  opts.codec = "";  // model-only: timing comes from the device model
  opts.queue_pairs = std::min(threads, 8u);
  opts.batch_size = 1;
  OffloadRuntime runtime(opts);

  std::vector<std::thread> clients;
  clients.reserve(threads);
  for (uint32_t t = 0; t < threads; ++t) {
    clients.emplace_back([&runtime, &opts, t, jobs_per_thread, bytes, r] {
      SimNanos now = 0;
      for (uint64_t i = 0; i < jobs_per_thread; ++i) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.model_bytes = bytes;
        req.ratio_hint = r;
        req.arrival = now;
        req.queue_pair = t % opts.queue_pairs;
        now = runtime.Submit(std::move(req)).get().sim_completion;
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();
  return runtime.Snapshot();
}

void Run() {
  PrintHeader("Finding 14", "Multi-device compression scaling (64 KB chunks)");
  PrintRow({"devices", "dp-csd GB/s", "qat-4xxx GB/s", "qat-8970 GB/s"});
  PrintRule(4);
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    ClosedLoopResult dpcsd = RunDeviceFleet(DpzipCdpuConfig(), n, CdpuOp::kCompress, kRequests,
                                            k64K, 0.40, 16 * n);
    // QAT 4xxx: at most 2 devices on this dual-socket platform (4 on quad).
    std::string qat4 = n <= 2 ? Fmt(RunDeviceFleet(Qat4xxxConfig(), n, CdpuOp::kCompress,
                                                   kRequests, k64K, 0.40, 64 * n)
                                        .gbps,
                                    2)
                              : "n/a (sockets)";
    ClosedLoopResult qat8 = RunDeviceFleet(Qat8970Config(), n, CdpuOp::kCompress, kRequests,
                                           k64K, 0.40, 64 * n);
    PrintRow({Fmt(n, 0), Fmt(dpcsd.gbps, 2), qat4, Fmt(qat8.gbps, 2)});
  }

  std::printf("\nThread scaling on one device (4 KB compress GB/s)\n");
  PrintRow({"threads", "dp-csd", "qat-4xxx", "qat-8970"});
  PrintRule(4);
  CdpuDevice dpcsd(DpzipCdpuConfig());
  CdpuDevice qat4(Qat4xxxConfig());
  CdpuDevice qat8(Qat8970Config());
  for (uint32_t t : {1u, 8u, 32u, 64u, 128u}) {
    PrintRow({Fmt(t, 0),
              Fmt(dpcsd.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2),
              Fmt(qat4.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2),
              Fmt(qat8.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2)});
  }
  std::printf("\nThread scaling through the offload runtime (4 KB compress,\n"
              "real threads contending for the 64 descriptor slots)\n");
  PrintRow({"threads", "qat-8970 GB/s", "mean lat us", "ceil delays", "max inflight"});
  PrintRule(5);
  for (uint32_t t : {1u, 8u, 32u, 64u, 96u, 128u}) {
    uint64_t per_thread = 3000 / t + 8;
    RuntimeStats s = RunViaRuntime(Qat8970Config(), t, per_thread, 4096, 0.45);
    PrintRow({Fmt(t, 0), Fmt(s.sim_gbps(), 2), Fmt(s.device_latency_us.mean(), 1),
              Fmt(static_cast<double>(s.ceiling_delays), 0),
              Fmt(static_cast<double>(s.max_inflight), 0)});
  }

  std::printf("\nPaper shape: DP-CSD near-linear to 8 devices (98.6 GB/s); QAT\n"
              "throughput plateaus past its 64-deep queues and socket limits.\n"
              "Runtime sweep: throughput climbs with threads until the 64-slot\n"
              "concurrency ceiling saturates, then latency absorbs the excess.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
