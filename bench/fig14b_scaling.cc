// Finding 14: multi-device scalability. DP-CSD scales near-linearly with
// drive count (paper: 12.5 GB/s -> 98.6 GB/s at 8 drives, 64 KB chunks);
// QAT 4xxx is bounded by CPU sockets (max ~4 per server, 4.77 -> 9.54 GB/s
// for two); QAT 8970 scales with PCIe slots but contends for them.

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

constexpr uint64_t k64K = 65536;
constexpr uint64_t kRequests = 8000;

void Run() {
  PrintHeader("Finding 14", "Multi-device compression scaling (64 KB chunks)");
  PrintRow({"devices", "dp-csd GB/s", "qat-4xxx GB/s", "qat-8970 GB/s"});
  PrintRule(4);
  for (uint32_t n : {1u, 2u, 4u, 8u}) {
    ClosedLoopResult dpcsd = RunDeviceFleet(DpzipCdpuConfig(), n, CdpuOp::kCompress, kRequests,
                                            k64K, 0.40, 16 * n);
    // QAT 4xxx: at most 2 devices on this dual-socket platform (4 on quad).
    std::string qat4 = n <= 2 ? Fmt(RunDeviceFleet(Qat4xxxConfig(), n, CdpuOp::kCompress,
                                                   kRequests, k64K, 0.40, 64 * n)
                                        .gbps,
                                    2)
                              : "n/a (sockets)";
    ClosedLoopResult qat8 = RunDeviceFleet(Qat8970Config(), n, CdpuOp::kCompress, kRequests,
                                           k64K, 0.40, 64 * n);
    PrintRow({Fmt(n, 0), Fmt(dpcsd.gbps, 2), qat4, Fmt(qat8.gbps, 2)});
  }

  std::printf("\nThread scaling on one device (4 KB compress GB/s)\n");
  PrintRow({"threads", "dp-csd", "qat-4xxx", "qat-8970"});
  PrintRule(4);
  CdpuDevice dpcsd(DpzipCdpuConfig());
  CdpuDevice qat4(Qat4xxxConfig());
  CdpuDevice qat8(Qat8970Config());
  for (uint32_t t : {1u, 8u, 32u, 64u, 128u}) {
    PrintRow({Fmt(t, 0),
              Fmt(dpcsd.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2),
              Fmt(qat4.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2),
              Fmt(qat8.RunClosedLoop(CdpuOp::kCompress, 8000, 4096, 0.45, t).gbps, 2)});
  }
  std::printf("\nPaper shape: DP-CSD near-linear to 8 devices (98.6 GB/s); QAT\n"
              "throughput plateaus past its 64-deep queues and socket limits.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
