// Figure 19: YCSB Workload-A power efficiency (operations per joule).
// Finding 13: DPZip reaches 5224 OPs/J in the paper, both QAT variants stay
// under 3800 (CPU busy-waiting during hardware polling), software lowest.

#include <memory>

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/hw/device_configs.h"
#include "src/hw/power.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

void RunScheme(ExperimentContext& ctx, obs::Table& t, CompressionScheme scheme,
               double cpu_util) {
  bench::YcsbScenarioParams params;
  params.workload = 'A';
  params.record_count = ctx.Pick(600, 1500);
  Result<std::unique_ptr<bench::YcsbScenario>> sc = bench::MakeYcsbScenario(scheme, params);
  if (!sc.ok()) {
    return;
  }
  Result<YcsbRunResult> r = YcsbRun((*sc)->db.get(), (*sc)->workload.get(), 24,
                                    ctx.Pick(1200, 4000), (*sc)->clock);
  if (!r.ok()) {
    return;
  }

  EnergyMeter meter;
  meter.AddCpu(cpu_util, r->makespan);
  // CPU utilisation: DB work itself plus compression (software) or polling
  // (QAT busy-wait, the paper's culprit for QAT's poor OPs/J).
  if (scheme == CompressionScheme::kQat8970) {
    CdpuConfig dev = Qat8970Config();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  } else if (scheme == CompressionScheme::kQat4xxx) {
    CdpuConfig dev = Qat4xxxConfig();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  } else if (scheme == CompressionScheme::kDpCsd) {
    CdpuConfig dev = DpzipCdpuConfig();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  }
  t.AddRow({SchemeName(scheme), r->kops,
            EnergyMeter::OpsPerJoule(r->ops, meter.NetJoules()), cpu_util * 100});
}

void Run(ExperimentContext& ctx) {
  obs::Table& t = ctx.AddTable(
      "ops_per_joule", "",
      {Column("scheme"), Column("kops", "KOPS", 0), Column("ops_per_j", "OPs/J", 0),
       Column("cpu_util", "cpu util", 0, "%")});
  RunScheme(ctx, t, CompressionScheme::kOff, 0.35);
  RunScheme(ctx, t, CompressionScheme::kCpu, 0.85);
  RunScheme(ctx, t, CompressionScheme::kQat8970, 0.60);
  RunScheme(ctx, t, CompressionScheme::kQat4xxx, 0.55);
  RunScheme(ctx, t, CompressionScheme::kDpCsd, 0.35);
  ctx.Note("Paper shape: DPZip ~5224 OPs/J, QAT < 3800 (polling overhead puts\n"
           "QAT near software), DP-CSD near the OFF baseline.");
}

CDPU_REGISTER_EXPERIMENT("fig19", "Figure 19", "YCSB-A power efficiency (OPs/J)", Run);

}  // namespace
}  // namespace cdpu
