// Figure 19: YCSB Workload-A power efficiency (operations per joule).
// Finding 13: DPZip reaches 5224 OPs/J in the paper, both QAT variants stay
// under 3800 (CPU busy-waiting during hardware polling), software lowest.

#include <memory>

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"
#include "src/hw/power.h"
#include "src/kv/ycsb_runner.h"

namespace cdpu {
namespace {

constexpr uint64_t kRecords = 1500;
constexpr uint64_t kOps = 4000;

void RunScheme(CompressionScheme scheme, double cpu_util) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 128 * 1024;
  LsmDb db(cfg, ssd.get(), MakeSchemeBackend(scheme));

  YcsbConfig ycfg;
  ycfg.workload = 'A';
  ycfg.record_count = kRecords;
  ycfg.value_size = 400;
  YcsbWorkload wl(ycfg);

  SimNanos clock = 0;
  if (!YcsbLoad(&db, wl, &clock).ok()) {
    return;
  }
  Result<YcsbRunResult> r = YcsbRun(&db, &wl, 24, kOps, clock);
  if (!r.ok()) {
    return;
  }

  EnergyMeter meter;
  meter.AddCpu(cpu_util, r->makespan);
  if (scheme == CompressionScheme::kQat8970) {
    CdpuConfig dev = Qat8970Config();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  } else if (scheme == CompressionScheme::kQat4xxx) {
    CdpuConfig dev = Qat4xxxConfig();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  } else if (scheme == CompressionScheme::kDpCsd) {
    CdpuConfig dev = DpzipCdpuConfig();
    meter.AddDevice(dev.name, dev.active_power_w, dev.idle_power_w, r->makespan / 2,
                    r->makespan);
  }
  PrintRow({SchemeName(scheme), Fmt(r->kops, 0),
            Fmt(EnergyMeter::OpsPerJoule(r->ops, meter.NetJoules()), 0),
            Fmt(cpu_util * 100, 0) + "%"});
}

void Run() {
  PrintHeader("Figure 19", "YCSB-A power efficiency (OPs/J)");
  PrintRow({"scheme", "KOPS", "OPs/J", "cpu util"});
  PrintRule(4);
  // CPU utilisation: DB work itself plus compression (software) or polling
  // (QAT busy-wait, the paper's culprit for QAT's poor OPs/J).
  RunScheme(CompressionScheme::kOff, 0.35);
  RunScheme(CompressionScheme::kCpu, 0.85);
  RunScheme(CompressionScheme::kQat8970, 0.60);
  RunScheme(CompressionScheme::kQat4xxx, 0.55);
  RunScheme(CompressionScheme::kDpCsd, 0.35);
  std::printf("\nPaper shape: DPZip ~5224 OPs/J, QAT < 3800 (polling overhead puts\n"
              "QAT near software), DP-CSD near the OFF baseline.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
