// Table 1: testbed configuration — the modelled devices, their placement,
// interconnect and engine parameters, printed from the actual configs the
// other benchmarks run with.

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

void AddDevice(obs::Table& t, const CdpuConfig& c) {
  t.AddRow({c.name, PlacementName(c.placement), c.link.name, c.algorithm,
            Fmt(c.engines, 0) + " engines",
            Fmt(c.compress_gbps * c.engines, 1) + "/" +
                Fmt(c.decompress_gbps * c.engines, 1) + " GB/s"});
}

void Run(ExperimentContext& ctx) {
  obs::Table& t = ctx.AddTable(
      "testbed", "",
      {Column("cdpu", "CDPU"), Column("placement", "Placement"),
       Column("interconnect", "Interconnect"), Column("algorithm", "Algorithm"),
       Column("parallelism", "Parallelism"), Column("cd_peak", "C/D peak")});
  AddDevice(t, Qat8970Config());
  AddDevice(t, Qat4xxxConfig());
  AddDevice(t, Csd2000CdpuConfig());
  AddDevice(t, DpzipCdpuConfig());
  AddDevice(t, CpuSoftwareConfig("deflate"));
  ctx.Note("Server model: dual-socket, 88 threads @2.7GHz, DDR5; power floor 350 W.");
  ctx.Note("All devices share the simulated host; see DESIGN.md for substitutions.");
}

CDPU_REGISTER_EXPERIMENT("table01", "Table 1",
                         "Testbed configuration: CDPU instances, placement, interconnect", Run);

}  // namespace
}  // namespace cdpu
