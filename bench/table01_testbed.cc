// Table 1: testbed configuration — the modelled devices, their placement,
// interconnect and engine parameters, printed from the actual configs the
// other benchmarks run with.

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

void PrintDevice(const CdpuConfig& c) {
  PrintRow({c.name, PlacementName(c.placement), c.link.name, c.algorithm,
            Fmt(c.engines, 0) + " engines",
            Fmt(c.compress_gbps * c.engines, 1) + "/" +
                Fmt(c.decompress_gbps * c.engines, 1) + " GB/s"},
           16);
}

void Run() {
  PrintHeader("Table 1", "Testbed configuration: CDPU instances, placement, interconnect");
  PrintRow({"CDPU", "Placement", "Interconnect", "Algorithm", "Parallelism", "C/D peak"}, 16);
  PrintRule(6, 16);
  PrintDevice(Qat8970Config());
  PrintDevice(Qat4xxxConfig());
  PrintDevice(Csd2000CdpuConfig());
  PrintDevice(DpzipCdpuConfig());
  PrintDevice(CpuSoftwareConfig("deflate"));
  std::printf("\nServer model: dual-socket, 88 threads @2.7GHz, DDR5; power floor 350 W.\n");
  std::printf("All devices share the simulated host; see DESIGN.md for substitutions.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
