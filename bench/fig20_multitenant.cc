// Figure 20: multi-tenant SR-IOV sharing — each CDPU partitioned into 24
// VFs mapped to 24 VMs. Finding 15: QAT devices oscillate severely
// (write CV 51-54%, read CV 80-89%); DP-CSD's per-VF fair scheduling holds
// CV < 0.5%.
//
// The final section re-creates the arbitration contrast through the offload
// runtime: 24 real tenant threads, one queue pair each, bursting at a shared
// device. Fair dispatch (one batch per VF per sweep, DP-CSD-style) versus
// greedy dispatch (drain each VF completely, the QAT capture behaviour).

#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/virt/sriov.h"

namespace cdpu {
namespace {

SriovConfig Make(const char* name, VfArbitration arb, double gbps, uint32_t batch,
                 uint64_t seed) {
  SriovConfig c;
  c.name = name;
  c.arbitration = arb;
  c.device_gbps = gbps;
  c.drain_batch = batch;
  c.seed = seed;
  return c;
}

void Report(const SriovConfig& cfg) {
  MultiTenantResult r = RunMultiTenant(cfg);
  double min_gbps = 1e18;
  double max_gbps = 0;
  for (const TenantOutcome& t : r.tenants) {
    min_gbps = std::min(min_gbps, t.gbps);
    max_gbps = std::max(max_gbps, t.gbps);
  }
  PrintRow({cfg.name, Fmt(r.total_gbps, 2), Fmt(r.cv_percent, 2) + "%",
            Fmt(min_gbps * 1000, 1), Fmt(max_gbps * 1000, 1)});
}

// Per-tenant simulated throughput when `tenants` threads burst
// `jobs_per_tenant` requests (arrival 0) at one shared device.
void ReportRuntimeArbitration(const char* label, bool fair_dispatch) {
  constexpr uint32_t kTenants = 24;
  constexpr uint32_t kJobsPerTenant = 48;
  constexpr uint64_t kBytes = 65536;

  RuntimeOptions opts;
  opts.device = Qat8970Config();
  opts.codec = "";
  opts.queue_pairs = kTenants;  // one VF (queue pair) per VM
  opts.batch_size = 16;
  opts.doorbell_window_ns = 20 * 1000;
  opts.fair_dispatch = fair_dispatch;
  OffloadRuntime runtime(opts);

  std::vector<std::vector<std::future<OffloadResult>>> futures(kTenants);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (uint32_t t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&runtime, &futures, t] {
      for (uint32_t i = 0; i < kJobsPerTenant; ++i) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.model_bytes = kBytes;
        req.ratio_hint = 0.4;
        req.arrival = 0;  // simultaneous burst: arbitration decides the order
        req.queue_pair = t;
        futures[t].push_back(runtime.Submit(std::move(req)));
      }
      runtime.Flush(t);
    });
  }
  for (std::thread& t : tenants) {
    t.join();
  }
  runtime.Drain();

  RunningStats per_tenant_gbps;
  for (uint32_t t = 0; t < kTenants; ++t) {
    SimNanos last = 0;
    for (auto& f : futures[t]) {
      last = std::max(last, f.get().sim_completion);
    }
    if (last > 0) {
      per_tenant_gbps.Add(static_cast<double>(kJobsPerTenant) * kBytes /
                          static_cast<double>(last));
    }
  }
  RuntimeStats stats = runtime.Snapshot();
  PrintRow({label, Fmt(stats.sim_gbps(), 2), Fmt(per_tenant_gbps.cv_percent(), 2) + "%",
            Fmt(per_tenant_gbps.min() * 1000, 1), Fmt(per_tenant_gbps.max() * 1000, 1)});
}

void Run() {
  PrintHeader("Figure 20", "24 VMs per CDPU via SR-IOV: per-tenant fairness");

  std::printf("\nWrite-path sharing (per-VM MB/s min/max)\n");
  PrintRow({"device", "total GB/s", "CV", "min MB/s", "max MB/s"});
  PrintRule(5);
  Report(Make("qat-8970", VfArbitration::kUnarbitrated, 5.1, 8, 11));
  Report(Make("qat-4xxx", VfArbitration::kUnarbitrated, 4.3, 8, 12));
  Report(Make("plain-ssd", VfArbitration::kWeightedFair, 6.0, 8, 13));
  Report(Make("dp-csd", VfArbitration::kWeightedFair, 5.6, 8, 14));

  std::printf("\nRead-path sharing (larger drain batches amplify capture)\n");
  PrintRow({"device", "total GB/s", "CV", "min MB/s", "max MB/s"});
  PrintRule(5);
  Report(Make("qat-8970", VfArbitration::kUnarbitrated, 7.6, 16, 15));
  Report(Make("qat-4xxx", VfArbitration::kUnarbitrated, 7.0, 16, 16));
  Report(Make("plain-ssd", VfArbitration::kWeightedFair, 8.0, 16, 17));
  Report(Make("dp-csd", VfArbitration::kWeightedFair, 9.4, 16, 18));

  std::printf("\nOffload-runtime arbitration (24 tenant threads bursting 64 KB\n"
              "writes at one device; per-tenant MB/s min/max)\n");
  PrintRow({"dispatch", "total GB/s", "CV", "min MB/s", "max MB/s"});
  PrintRule(5);
  ReportRuntimeArbitration("fair (dp-csd)", /*fair_dispatch=*/true);
  ReportRuntimeArbitration("greedy (qat)", /*fair_dispatch=*/false);

  std::printf("\nPaper shape: QAT write CVs 51.14%%/54.39%%, read CVs 80.49%%/89%%;\n"
              "DP-CSD CV = 0.48%% via front-end QoS with per-VF fair scheduling.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
