// Figure 20: multi-tenant SR-IOV sharing — each CDPU partitioned into 24
// VFs mapped to 24 VMs. Finding 15: QAT devices oscillate severely
// (write CV 51-54%, read CV 80-89%); DP-CSD's per-VF fair scheduling holds
// CV < 0.5%.

#include "bench/bench_util.h"
#include "src/virt/sriov.h"

namespace cdpu {
namespace {

SriovConfig Make(const char* name, VfArbitration arb, double gbps, uint32_t batch,
                 uint64_t seed) {
  SriovConfig c;
  c.name = name;
  c.arbitration = arb;
  c.device_gbps = gbps;
  c.drain_batch = batch;
  c.seed = seed;
  return c;
}

void Report(const SriovConfig& cfg) {
  MultiTenantResult r = RunMultiTenant(cfg);
  double min_gbps = 1e18;
  double max_gbps = 0;
  for (const TenantOutcome& t : r.tenants) {
    min_gbps = std::min(min_gbps, t.gbps);
    max_gbps = std::max(max_gbps, t.gbps);
  }
  PrintRow({cfg.name, Fmt(r.total_gbps, 2), Fmt(r.cv_percent, 2) + "%",
            Fmt(min_gbps * 1000, 1), Fmt(max_gbps * 1000, 1)});
}

void Run() {
  PrintHeader("Figure 20", "24 VMs per CDPU via SR-IOV: per-tenant fairness");

  std::printf("\nWrite-path sharing (per-VM MB/s min/max)\n");
  PrintRow({"device", "total GB/s", "CV", "min MB/s", "max MB/s"});
  PrintRule(5);
  Report(Make("qat-8970", VfArbitration::kUnarbitrated, 5.1, 8, 11));
  Report(Make("qat-4xxx", VfArbitration::kUnarbitrated, 4.3, 8, 12));
  Report(Make("plain-ssd", VfArbitration::kWeightedFair, 6.0, 8, 13));
  Report(Make("dp-csd", VfArbitration::kWeightedFair, 5.6, 8, 14));

  std::printf("\nRead-path sharing (larger drain batches amplify capture)\n");
  PrintRow({"device", "total GB/s", "CV", "min MB/s", "max MB/s"});
  PrintRule(5);
  Report(Make("qat-8970", VfArbitration::kUnarbitrated, 7.6, 16, 15));
  Report(Make("qat-4xxx", VfArbitration::kUnarbitrated, 7.0, 16, 16));
  Report(Make("plain-ssd", VfArbitration::kWeightedFair, 8.0, 16, 17));
  Report(Make("dp-csd", VfArbitration::kWeightedFair, 9.4, 16, 18));

  std::printf("\nPaper shape: QAT write CVs 51.14%%/54.39%%, read CVs 80.49%%/89%%;\n"
              "DP-CSD CV = 0.48%% via front-end QoS with per-VF fair scheduling.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
