// Figure 20: multi-tenant SR-IOV sharing — each CDPU partitioned into 24
// VFs mapped to 24 VMs. Finding 15: QAT devices oscillate severely
// (write CV 51-54%, read CV 80-89%); DP-CSD's per-VF fair scheduling holds
// CV < 0.5%.
//
// The final section re-creates the arbitration contrast through the offload
// runtime: 24 real tenant threads, one queue pair each, bursting at a shared
// device. Fair dispatch (one batch per VF per sweep, DP-CSD-style) versus
// greedy dispatch (drain each VF completely, the QAT capture behaviour).

#include <algorithm>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/common/stats.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/runtime/stats_export.h"
#include "src/virt/sriov.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

SriovConfig Make(const char* name, VfArbitration arb, double gbps, uint32_t batch,
                 uint64_t seed) {
  SriovConfig c;
  c.name = name;
  c.arbitration = arb;
  c.device_gbps = gbps;
  c.drain_batch = batch;
  c.seed = seed;
  return c;
}

void Report(obs::Table& t, const SriovConfig& cfg) {
  MultiTenantResult r = RunMultiTenant(cfg);
  double min_gbps = 1e18;
  double max_gbps = 0;
  for (const TenantOutcome& tenant : r.tenants) {
    min_gbps = std::min(min_gbps, tenant.gbps);
    max_gbps = std::max(max_gbps, tenant.gbps);
  }
  t.AddRow({cfg.name, r.total_gbps, r.cv_percent, min_gbps * 1000, max_gbps * 1000});
}

// Per-tenant simulated throughput when `tenants` threads burst
// `jobs_per_tenant` requests (arrival 0) at one shared device.
void ReportRuntimeArbitration(ExperimentContext& ctx, obs::Table& t, const char* label,
                              bool fair_dispatch) {
  constexpr uint32_t kTenants = 24;
  // Must stay >1 batch per tenant (batch_size below) or fair and greedy
  // dispatch degenerate to the same single-batch drain order.
  const uint32_t jobs_per_tenant = static_cast<uint32_t>(ctx.Pick(32, 48));
  constexpr uint64_t kBytes = 65536;

  RuntimeOptions opts;
  opts.device = Qat8970Config();
  opts.codec = "";
  opts.queue_pairs = kTenants;  // one VF (queue pair) per VM
  opts.batch_size = 16;
  opts.doorbell_window_ns = 20 * 1000;
  opts.fair_dispatch = fair_dispatch;
  OffloadRuntime runtime(opts);

  std::vector<std::vector<std::future<OffloadResult>>> futures(kTenants);
  std::vector<std::thread> tenants;
  tenants.reserve(kTenants);
  for (uint32_t tid = 0; tid < kTenants; ++tid) {
    tenants.emplace_back([&runtime, &futures, tid, jobs_per_tenant] {
      for (uint32_t i = 0; i < jobs_per_tenant; ++i) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.model_bytes = kBytes;
        req.ratio_hint = 0.4;
        req.arrival = 0;  // simultaneous burst: arbitration decides the order
        req.queue_pair = tid;
        futures[tid].push_back(runtime.Submit(std::move(req)));
      }
      runtime.Flush(tid);
    });
  }
  for (std::thread& tenant : tenants) {
    tenant.join();
  }
  runtime.Drain();

  RunningStats per_tenant_gbps;
  for (uint32_t tid = 0; tid < kTenants; ++tid) {
    SimNanos last = 0;
    for (auto& f : futures[tid]) {
      last = std::max(last, f.get().sim_completion);
    }
    if (last > 0) {
      per_tenant_gbps.Add(static_cast<double>(jobs_per_tenant) * kBytes /
                          static_cast<double>(last));
    }
  }
  RuntimeStats stats = runtime.Snapshot();
  ExportRuntimeStats(stats, fair_dispatch ? "fair" : "greedy", &ctx.metrics());
  t.AddRow({label, stats.sim_gbps(), per_tenant_gbps.cv_percent(),
            per_tenant_gbps.min() * 1000, per_tenant_gbps.max() * 1000});
}

std::vector<Column> FairnessColumns(const char* first_key, const char* first_label) {
  return {Column(first_key, first_label), Column("total_gbps", "total GB/s"),
          Column("cv", "CV", 2, "%"), Column("min_mbps", "min MB/s", 1),
          Column("max_mbps", "max MB/s", 1)};
}

void Run(ExperimentContext& ctx) {
  obs::Table& write_tbl = ctx.AddTable("write_sharing",
                                       "Write-path sharing (per-VM MB/s min/max)",
                                       FairnessColumns("device", "device"));
  Report(write_tbl, Make("qat-8970", VfArbitration::kUnarbitrated, 5.1, 8, 11));
  Report(write_tbl, Make("qat-4xxx", VfArbitration::kUnarbitrated, 4.3, 8, 12));
  Report(write_tbl, Make("plain-ssd", VfArbitration::kWeightedFair, 6.0, 8, 13));
  Report(write_tbl, Make("dp-csd", VfArbitration::kWeightedFair, 5.6, 8, 14));

  obs::Table& read_tbl = ctx.AddTable(
      "read_sharing", "Read-path sharing (larger drain batches amplify capture)",
      FairnessColumns("device", "device"));
  Report(read_tbl, Make("qat-8970", VfArbitration::kUnarbitrated, 7.6, 16, 15));
  Report(read_tbl, Make("qat-4xxx", VfArbitration::kUnarbitrated, 7.0, 16, 16));
  Report(read_tbl, Make("plain-ssd", VfArbitration::kWeightedFair, 8.0, 16, 17));
  Report(read_tbl, Make("dp-csd", VfArbitration::kWeightedFair, 9.4, 16, 18));

  obs::Table& rt_tbl = ctx.AddTable(
      "runtime_arbitration",
      "Offload-runtime arbitration (24 tenant threads bursting 64 KB\n"
      "writes at one device; per-tenant MB/s min/max)",
      FairnessColumns("dispatch", "dispatch"));
  ReportRuntimeArbitration(ctx, rt_tbl, "fair (dp-csd)", /*fair_dispatch=*/true);
  ReportRuntimeArbitration(ctx, rt_tbl, "greedy (qat)", /*fair_dispatch=*/false);

  ctx.Note("Paper shape: QAT write CVs 51.14%/54.39%, read CVs 80.49%/89%;\n"
           "DP-CSD CV = 0.48% via front-end QoS with per-VF fair scheduling.");
}

CDPU_REGISTER_EXPERIMENT("fig20", "Figure 20",
                         "24 VMs per CDPU via SR-IOV: per-tenant fairness", Run);

}  // namespace
}  // namespace cdpu
