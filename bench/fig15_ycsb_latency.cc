// Figure 15: YCSB read latency after a cold start (page cache flushed).
// Finding 8: application-visible (QAT/CPU) compression packs SSTables
// denser, lowering read latency; host-transparent DP-CSD compression does
// not change the logical layout, so its read latency matches OFF.

#include <memory>

#include "bench/bench_util.h"
#include "src/kv/ycsb_runner.h"

namespace cdpu {
namespace {

constexpr uint64_t kRecords = 2000;
constexpr uint64_t kOps = 2500;

struct LatencyPoint {
  double mean_us;
  double p99_us;
  int depth;
  uint64_t file_kb;
};

LatencyPoint RunScheme(CompressionScheme scheme, uint32_t threads) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
  LsmConfig cfg;
  cfg.memtable_bytes = 96 * 1024;
  cfg.sstable_data_bytes = 96 * 1024;
  cfg.level1_bytes = 384 * 1024;
  LsmDb db(cfg, ssd.get(), MakeSchemeBackend(scheme));

  YcsbConfig ycfg;
  ycfg.workload = 'A';
  ycfg.record_count = kRecords;
  ycfg.value_size = 400;
  YcsbWorkload wl(ycfg);

  SimNanos clock = 0;
  LatencyPoint p{0, 0, 0, 0};
  if (!YcsbLoad(&db, wl, &clock).ok()) {
    return p;
  }
  Result<YcsbRunResult> r = YcsbRun(&db, &wl, threads, kOps, clock);
  if (r.ok()) {
    p.mean_us = r->mean_read_latency_us;
    p.p99_us = r->p99_read_latency_us;
  }
  p.depth = db.DepthUsed();
  p.file_kb = db.TotalFileBytes() / 1024;
  return p;
}

void Run() {
  PrintHeader("Figure 15", "YCSB read latency (us) and LSM shape vs scheme");
  for (uint32_t threads : {4u, 24u, 64u}) {
    std::printf("\nthreads = %u\n", threads);
    PrintRow({"scheme", "mean us", "p99 us", "lsm depth", "files KB"});
    PrintRule(5);
    for (CompressionScheme scheme :
         {CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat8970,
          CompressionScheme::kQat4xxx, CompressionScheme::kDpCsd}) {
      LatencyPoint p = RunScheme(scheme, threads);
      PrintRow({SchemeName(scheme), Fmt(p.mean_us, 1), Fmt(p.p99_us, 1), Fmt(p.depth, 0),
                Fmt(p.file_kb, 0)});
    }
  }
  std::printf("\nPaper shape: QAT-based compression gives the lowest read latency\n"
              "(denser SSTables, shallower tree); DP-CSD matches OFF logically and\n"
              "gains no read-latency benefit despite the physical space savings.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
