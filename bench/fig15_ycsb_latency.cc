// Figure 15: YCSB read latency after a cold start (page cache flushed).
// Finding 8: application-visible (QAT/CPU) compression packs SSTables
// denser, lowering read latency; host-transparent DP-CSD compression does
// not change the logical layout, so its read latency matches OFF.

#include <memory>

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct LatencyPoint {
  double mean_us = 0;
  double p99_us = 0;
  int depth = 0;
  uint64_t file_kb = 0;
};

LatencyPoint RunScheme(ExperimentContext& ctx, CompressionScheme scheme, uint32_t threads) {
  bench::YcsbScenarioParams params;
  params.workload = 'A';
  params.record_count = ctx.Pick(800, 2000);
  params.memtable_bytes = 96 * 1024;
  params.sstable_data_bytes = 96 * 1024;
  params.level1_bytes = 384 * 1024;
  LatencyPoint p;
  Result<std::unique_ptr<bench::YcsbScenario>> sc = bench::MakeYcsbScenario(scheme, params);
  if (!sc.ok()) {
    return p;
  }
  Result<YcsbRunResult> r = YcsbRun((*sc)->db.get(), (*sc)->workload.get(), threads,
                                    ctx.Pick(1000, 2500), (*sc)->clock);
  if (r.ok()) {
    p.mean_us = r->mean_read_latency_us;
    p.p99_us = r->p99_read_latency_us;
  }
  p.depth = (*sc)->db->DepthUsed();
  p.file_kb = (*sc)->db->TotalFileBytes() / 1024;
  return p;
}

void Run(ExperimentContext& ctx) {
  std::vector<uint32_t> thread_counts =
      ctx.quick() ? std::vector<uint32_t>{4, 64} : std::vector<uint32_t>{4, 24, 64};
  for (uint32_t threads : thread_counts) {
    obs::Table& t = ctx.AddTable(
        "threads_" + std::to_string(threads), "threads = " + std::to_string(threads),
        {Column("scheme"), Column("mean_us", "mean us", 1), Column("p99_us", "p99 us", 1),
         Column("lsm_depth", "lsm depth", 0), Column("files_kb", "files KB", 0)});
    for (CompressionScheme scheme : bench::PrimarySchemes()) {
      LatencyPoint p = RunScheme(ctx, scheme, threads);
      t.AddRow({SchemeName(scheme), p.mean_us, p.p99_us, p.depth, p.file_kb});
    }
  }
  ctx.Note("Paper shape: QAT-based compression gives the lowest read latency\n"
           "(denser SSTables, shallower tree); DP-CSD matches OFF logically and\n"
           "gains no read-latency benefit despite the physical space savings.");
}

CDPU_REGISTER_EXPERIMENT("fig15", "Figure 15",
                         "YCSB read latency (us) and LSM shape vs scheme", Run);

}  // namespace
}  // namespace cdpu
