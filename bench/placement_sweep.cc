// Placement-policy sweep (ISSUE 7): payload size x routing policy over a
// heterogeneous device fleet, reproducing the Figure 8/9 crossover the
// paper's placement discussion hangs on — small (setup-dominated) payloads
// belong on the on-chip/CPU class, large payloads on the offload ASICs, and
// the crossover sits where per-request setup cost is amortised.
//
// Default fleet: qat8970 (peripheral ASIC) + qat4xxx (on-chip) + cpu
// (software), overridable with `run placement_sweep --devices=...`;
// `--placement=POLICY` narrows the sweep to one policy. Every point drives
// compress round trips through a FleetRuntime and reads the router's
// per-device routed counters, so the shares reported here are exactly what
// the service layer would do — not an analytic model of it.

#include <chrono>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"
#include "src/runtime/fleet.h"
#include "src/runtime/placement.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr double kRatio = 0.45;  // Silesia-like compressibility

struct SweepPoint {
  double mbps = 0;
  double mean_wall_us = 0;
  uint64_t jobs = 0;
  uint64_t failed = 0;
  // Share of jobs routed to the low-latency (on-chip/CPU) class vs the
  // offload-ASIC class, straight from the router's counters.
  double low_latency_share = 0;
  std::vector<PlacementDeviceView> views;
};

std::vector<FleetDeviceSpec> DefaultFleet() {
  std::vector<FleetDeviceSpec> specs;
  Status s = ParseDeviceList("qat8970,qat4xxx,cpu", &specs);
  (void)s;  // the literal list is valid by construction
  return specs;
}

SweepPoint RunPoint(const std::vector<FleetDeviceSpec>& specs, PlacementPolicy policy,
                    uint64_t payload_bytes, uint64_t jobs) {
  FleetOptions opts;
  opts.base.codec = "lz4";
  opts.base.queue_pairs = 2;
  opts.base.batch_size = 4;
  opts.devices = specs;
  opts.placement.policy = policy;
  opts.placement.seed = 0x5eed + payload_bytes;
  FleetRuntime runtime(opts);

  ByteVec payload = GenerateWithRatio(kRatio, payload_bytes, 0x90 + payload_bytes);

  double wall_us_sum = 0;
  uint64_t failed = 0;
  auto t0 = std::chrono::steady_clock::now();
  // Closed-loop with a fixed window of in-flight jobs: enough concurrency
  // that least-outstanding/ewma have real queues to react to, bounded so a
  // quick preset finishes in milliseconds.
  constexpr size_t kWindow = 16;
  std::vector<std::future<OffloadResult>> window;
  uint64_t submitted = 0;
  while (submitted < jobs || !window.empty()) {
    while (submitted < jobs && window.size() < kWindow) {
      OffloadRequest req;
      req.op = CdpuOp::kCompress;
      req.input = payload;
      req.queue_pair = static_cast<uint32_t>(submitted % opts.base.queue_pairs);
      window.push_back(runtime.Submit(std::move(req)));
      ++submitted;
    }
    runtime.Flush(0);
    runtime.Flush(1);
    OffloadResult r = window.front().get();
    window.erase(window.begin());
    if (r.status.ok()) {
      wall_us_sum += static_cast<double>(r.wall_latency_ns) / 1e3;
    } else {
      ++failed;
    }
  }
  double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);

  SweepPoint point;
  point.jobs = jobs;
  point.failed = failed;
  point.mbps = static_cast<double>(jobs * payload_bytes) / 1e6 /
               (wall_seconds > 0 ? wall_seconds : 1);
  uint64_t ok = jobs - failed;
  point.mean_wall_us = ok > 0 ? wall_us_sum / static_cast<double>(ok) : 0;
  point.views = runtime.router().SnapshotViews();
  uint64_t low = 0, total = 0;
  for (const PlacementDeviceView& v : point.views) {
    total += v.routed;
    if (PlacementRouter::IsLowLatencyClass(v.placement)) {
      low += v.routed;
    }
  }
  point.low_latency_share =
      total > 0 ? static_cast<double>(low) / static_cast<double>(total) : 0;
  return point;
}

std::string ShareString(const std::vector<PlacementDeviceView>& views) {
  uint64_t total = 0;
  for (const PlacementDeviceView& v : views) {
    total += v.routed;
  }
  std::string out;
  for (const PlacementDeviceView& v : views) {
    if (!out.empty()) {
      out += " ";
    }
    double pct = total > 0 ? 100.0 * static_cast<double>(v.routed) /
                                 static_cast<double>(total)
                           : 0;
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s=%.0f%%", v.name.c_str(), pct);
    out += buf;
  }
  return out;
}

void Run(ExperimentContext& ctx) {
  std::vector<FleetDeviceSpec> specs =
      ctx.devices().empty() ? DefaultFleet() : ctx.devices();

  std::vector<PlacementPolicy> policies;
  if (ctx.placement().has_value()) {
    policies.push_back(*ctx.placement());
  } else {
    policies = {PlacementPolicy::kStatic, PlacementPolicy::kSizeThreshold,
                PlacementPolicy::kLeastOutstanding, PlacementPolicy::kEwmaServiceRate};
  }
  std::vector<uint64_t> sizes =
      ctx.quick() ? std::vector<uint64_t>{4096, 16384, 65536, 262144}
                  : std::vector<uint64_t>{1024, 4096, 16384, 65536, 262144, 1048576};
  const uint64_t jobs = ctx.Pick(96, 768);

  std::string fleet_desc;
  for (const FleetDeviceSpec& s : specs) {
    fleet_desc += (fleet_desc.empty() ? "" : ",") + s.name;
  }
  ctx.Note("fleet: " + fleet_desc + "; " + std::to_string(jobs) +
           " lz4 compress jobs per point, window 16");

  obs::Table& matrix = ctx.AddTable(
      "placement_matrix",
      "Routed share + throughput by payload size x policy (fleet: " + fleet_desc + ")",
      {Column("size_kb", "size KB", 0), Column("policy"), Column("mbps", "MB/s", 1),
       Column("mean_us", "mean us", 1), Column("low_latency_share", "cpu/on-chip", 1, "%"),
       Column("shares")});

  // First payload size at which the offload-ASIC class carries the majority
  // of traffic — the Fig 8/9 crossover, per policy.
  obs::Table& crossover = ctx.AddTable(
      "crossover", "ASIC-majority crossover point per policy",
      {Column("policy"), Column("crossover_kb", "crossover KB"),
       Column("asic_share_at_max", "asic share @max size", 1, "%")});

  for (PlacementPolicy policy : policies) {
    std::optional<uint64_t> crossover_bytes;
    double asic_share_at_max = 0;
    for (uint64_t size : sizes) {
      SweepPoint p = RunPoint(specs, policy, size, jobs);
      matrix.AddRow({static_cast<double>(size) / 1024.0, PlacementPolicyName(policy),
                     p.mbps, p.mean_wall_us, p.low_latency_share * 100,
                     ShareString(p.views)});
      double asic_share = 1.0 - p.low_latency_share;
      if (!crossover_bytes.has_value() && asic_share > 0.5) {
        crossover_bytes = size;
      }
      if (size == sizes.back()) {
        asic_share_at_max = asic_share;
      }
      ctx.metrics().Gauge("placement." + std::string(PlacementPolicyName(policy)) + "." +
                              std::to_string(size) + ".low_latency_share",
                          p.low_latency_share);
    }
    crossover.AddRow({PlacementPolicyName(policy),
                      crossover_bytes.has_value()
                          ? obs::Json(static_cast<double>(*crossover_bytes) / 1024.0)
                          : obs::Json("none"),
                      asic_share_at_max * 100});
  }
  crossover.AddNote(
      "size-threshold crosses at its 16 KB threshold by construction; "
      "least-outstanding/ewma cross where measured service rates do.");
}

CDPU_REGISTER_EXPERIMENT("placement_sweep", "Placement",
                         "payload size x placement policy sweep over a device fleet", Run);

}  // namespace
}  // namespace cdpu
