// Figure 11 (live): the latency breakdown recomputed from per-request trace
// spans instead of the analytic device model. A traced OffloadRuntime
// compresses real chunks while every job leaves its contiguous span chain
// (queue_submit -> queue_engine -> device -> codec -> complete, plus the
// codec's LZ77/entropy sub-spans); the aggregation pass then reproduces the
// paper's queueing-vs-service breakdown from what the runtime actually did,
// and cross-checks it against (a) the runtime's own latency counters and
// (b) the analytic models the static fig11 uses.

#include <future>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/hw/cdpu_device.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/trace/breakdown.h"
#include "src/trace/trace.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr size_t kChunkBytes = 64 * 1024;
constexpr double kTargetRatio = 0.5;

void Run(ExperimentContext& ctx) {
  const uint64_t requests = ctx.Pick(64, 1024);
  const uint32_t client_threads = 2;

  std::vector<uint8_t> data = GenerateWithRatio(kTargetRatio, kChunkBytes, /*seed=*/7);

  trace::TraceSinkOptions topts;
  topts.sample_rate = 1.0;  // the cross-check needs every chain complete
  trace::TraceSink sink(topts);

  RuntimeOptions opts;
  opts.device = DpzipCdpuConfig();
  opts.codec = "dpzip";
  opts.queue_pairs = 2;
  opts.engine_threads = 2;
  opts.trace_sink = &sink;
  OffloadRuntime runtime(opts);

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([&, t] {
      std::vector<std::future<OffloadResult>> futures;
      for (uint64_t i = t; i < requests; i += client_threads) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.input = ByteSpan(data.data(), data.size());
        req.ratio_hint = kTargetRatio;
        req.queue_pair = t % opts.queue_pairs;
        req.tenant = t;
        futures.push_back(runtime.Submit(std::move(req)));
        runtime.Flush(t % opts.queue_pairs);
      }
      for (auto& f : futures) {
        f.get();
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();
  runtime.Shutdown();
  sink.Stop();

  RuntimeStats rs = runtime.Snapshot();
  std::vector<trace::SpanRecord> spans = sink.Snapshot();
  trace::Breakdown breakdown = trace::BuildBreakdown(spans, &sink);
  trace::ExportBreakdown(breakdown, sink.counters(), "trace.", &ctx.reporter());

  // Cross-check the live view against the independent references:
  //  - the runtime's own wall-latency counter (same requests, separate clock
  //    reads) vs the per-request span-chain sum;
  //  - the simulated device occupancy inside the `device` span vs the
  //    analytic CdpuDevice::RequestLatency for this chunk size;
  //  - the measured codec wall time vs the DPZip ASIC pipeline model — the
  //    software-vs-ASIC service-time gap the paper motivates offload with.
  CdpuDevice device(opts.device);
  double analytic_device_us =
      static_cast<double>(device.RequestLatency(CdpuOp::kCompress, kChunkBytes,
                                                kTargetRatio)) /
      1e3;

  DpzipCodec reference_codec;
  ByteVec compressed;
  reference_codec.Compress(ByteSpan(data.data(), data.size()), &compressed);
  DpzipPipelineModel pipeline;
  double asic_codec_us =
      static_cast<double>(pipeline.CompressLatency(reference_codec.last_stats()).nanos) /
      1e3;

  double live_codec_us = 0;
  for (const trace::PhaseStats& p : breakdown.phases) {
    if (p.phase == trace::Phase::kCodec) {
      live_codec_us = p.mean_us();
    }
  }

  obs::Table& xc = ctx.AddTable(
      "model_crosscheck", "Live spans vs the analytic models (mean us per request)",
      {Column("quantity"), Column("live_us", "live us", 1),
       Column("reference_us", "reference us", 1), Column("ratio", "", 2, "x")});
  double e2e_mean = breakdown.e2e_us.empty() ? 0 : breakdown.e2e_us.Mean();
  xc.AddRow({"e2e (spans vs runtime counter)", e2e_mean, rs.wall_latency_us.mean(),
             rs.wall_latency_us.mean() > 0 ? e2e_mean / rs.wall_latency_us.mean() : 0.0});
  xc.AddRow({"device sim occupancy (vs analytic)", rs.device_latency_us.mean(),
             analytic_device_us,
             analytic_device_us > 0 ? rs.device_latency_us.mean() / analytic_device_us : 0.0});
  xc.AddRow({"codec wall (software vs ASIC model)", live_codec_us, asic_codec_us,
             asic_codec_us > 0 ? live_codec_us / asic_codec_us : 0.0});
  xc.AddNote("the codec row is the software-vs-ASIC service-time gap, not an\n"
             "equality check; the first two rows should sit near 1x");

  ctx.metrics().Gauge("crosscheck.e2e_runtime_mean_us", rs.wall_latency_us.mean());
  ctx.metrics().Gauge("crosscheck.device_analytic_us", analytic_device_us);
  ctx.metrics().Gauge("crosscheck.codec_asic_model_us", asic_codec_us);

  ctx.Note("Same breakdown as fig11, but measured: every request's contiguous\n"
           "span chain sums to its wall latency, so the phase table is exact\n"
           "for means (percentile sums are approximate by construction).");
}

CDPU_REGISTER_EXPERIMENT("fig11_live_breakdown", "Figure 11 (live)",
                         "Latency breakdown from live request traces", Run);

}  // namespace
}  // namespace cdpu
