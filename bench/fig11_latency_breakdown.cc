// Figures 10/11: request processing flow and latency breakdown. (a) DMA
// read latency vs chunk size for the PCIe-attached QAT 8970 vs the
// DDIO-enabled on-chip QAT 4xxx (paper: up to 70x gap, 448 ns for 64 KB on
// the 4xxx); (b) end-to-end processing latency vs chunk size (paper: 8970
// 3-5x higher than 4xxx).

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"
#include "src/hw/interconnect.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

void Run(ExperimentContext& ctx) {
  Link pcie(Pcie3x16Link());
  Link cmi(CmiLink());

  obs::Table& dma = ctx.AddTable(
      "dma_latency", "(a) Device DMA read latency (us)",
      {Column("chunk_kb", "chunk KB", 0), Column("qat_8970", "qat-8970", 2),
       Column("qat_4xxx", "qat-4xxx", 3), Column("gap", "gap x", 0)});
  for (uint64_t kb : {4u, 16u, 64u, 128u, 256u, 512u}) {
    double p = static_cast<double>(pcie.TransferLatency(kb * 1024)) / 1e3;
    double c = static_cast<double>(cmi.TransferLatency(kb * 1024)) / 1e3;
    dma.AddRow({kb, p, c, p / c});
  }

  obs::Table& e2e = ctx.AddTable(
      "end_to_end", "(b) End-to-end compression latency (us)",
      {Column("chunk_kb", "chunk KB", 0), Column("qat_8970", "qat-8970", 1),
       Column("qat_4xxx", "qat-4xxx", 1), Column("ratio", "", 1, "x")});
  CdpuDevice qat8970(Qat8970Config());
  CdpuDevice qat4xxx(Qat4xxxConfig());
  for (uint64_t kb : {4u, 16u, 64u, 128u, 256u, 512u}) {
    double l8 = static_cast<double>(
                    qat8970.RequestLatency(CdpuOp::kCompress, kb * 1024, 0.42)) /
                1e3;
    double l4 = static_cast<double>(
                    qat4xxx.RequestLatency(CdpuOp::kCompress, kb * 1024, 0.42)) /
                1e3;
    e2e.AddRow({kb, l8, l4, l8 / l4});
  }

  obs::Table& stages = ctx.AddTable(
      "stage_stack",
      "(c) 64 KB compression request stage stack (us) — the Figure 10 flow",
      {Column("stage"), Column("qat_8970", "qat-8970", 2), Column("qat_4xxx", "qat-4xxx", 2)});
  CdpuDevice::RequestTrace t8 = qat8970.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  CdpuDevice::RequestTrace t4 = qat4xxx.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  auto us = [](SimNanos ns) { return static_cast<double>(ns) / 1e3; };
  stages.AddRow({"submit (driver)", us(t8.submit), us(t4.submit)});
  stages.AddRow({"DMA in", us(t8.dma_in), us(t4.dma_in)});
  stages.AddRow({"engine + verify", us(t8.service), us(t4.service)});
  stages.AddRow({"DMA out", us(t8.dma_out), us(t4.dma_out)});
  stages.AddRow({"complete (ISR)", us(t8.complete), us(t4.complete)});
  stages.AddRow({"total", us(t8.total()), us(t4.total())});

  ctx.Note("Paper shape: DMA gap grows to ~70x at large chunks (DDIO/LLC);\n"
           "end-to-end 8970 stays 2-5x above 4xxx despite equal engine specs;\n"
           "the stage stack shows where the placement difference lives.");
}

CDPU_REGISTER_EXPERIMENT("fig11", "Figure 11", "DMA and end-to-end latency vs chunk size", Run);

}  // namespace
}  // namespace cdpu
