// Figures 10/11: request processing flow and latency breakdown. (a) DMA
// read latency vs chunk size for the PCIe-attached QAT 8970 vs the
// DDIO-enabled on-chip QAT 4xxx (paper: up to 70x gap, 448 ns for 64 KB on
// the 4xxx); (b) end-to-end processing latency vs chunk size (paper: 8970
// 3-5x higher than 4xxx).

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"
#include "src/hw/interconnect.h"

namespace cdpu {
namespace {

void Run() {
  PrintHeader("Figure 11", "DMA and end-to-end latency vs chunk size");

  Link pcie(Pcie3x16Link());
  Link cmi(CmiLink());

  std::printf("\n(a) Device DMA read latency (us)\n");
  PrintRow({"chunk KB", "qat-8970", "qat-4xxx", "gap x"});
  PrintRule(4);
  for (uint64_t kb : {4u, 16u, 64u, 128u, 256u, 512u}) {
    double p = static_cast<double>(pcie.TransferLatency(kb * 1024)) / 1e3;
    double c = static_cast<double>(cmi.TransferLatency(kb * 1024)) / 1e3;
    PrintRow({Fmt(kb, 0), Fmt(p, 2), Fmt(c, 3), Fmt(p / c, 0)});
  }

  std::printf("\n(b) End-to-end compression latency (us)\n");
  PrintRow({"chunk KB", "qat-8970", "qat-4xxx", "ratio"});
  PrintRule(4);
  CdpuDevice qat8970(Qat8970Config());
  CdpuDevice qat4xxx(Qat4xxxConfig());
  for (uint64_t kb : {4u, 16u, 64u, 128u, 256u, 512u}) {
    double l8 = static_cast<double>(
                    qat8970.RequestLatency(CdpuOp::kCompress, kb * 1024, 0.42)) /
                1e3;
    double l4 = static_cast<double>(
                    qat4xxx.RequestLatency(CdpuOp::kCompress, kb * 1024, 0.42)) /
                1e3;
    PrintRow({Fmt(kb, 0), Fmt(l8, 1), Fmt(l4, 1), Fmt(l8 / l4, 1) + "x"});
  }
  std::printf("\n(c) 64 KB compression request stage stack (us) — the Figure 10 flow\n");
  PrintRow({"stage", "qat-8970", "qat-4xxx"});
  PrintRule(3);
  CdpuDevice::RequestTrace t8 = qat8970.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  CdpuDevice::RequestTrace t4 = qat4xxx.TraceRequest(CdpuOp::kCompress, 65536, 0.42);
  auto us = [](SimNanos ns) { return Fmt(static_cast<double>(ns) / 1e3, 2); };
  PrintRow({"submit (driver)", us(t8.submit), us(t4.submit)});
  PrintRow({"DMA in", us(t8.dma_in), us(t4.dma_in)});
  PrintRow({"engine + verify", us(t8.service), us(t4.service)});
  PrintRow({"DMA out", us(t8.dma_out), us(t4.dma_out)});
  PrintRow({"complete (ISR)", us(t8.complete), us(t4.complete)});
  PrintRow({"total", us(t8.total()), us(t4.total())});

  std::printf("\nPaper shape: DMA gap grows to ~70x at large chunks (DDIO/LLC);\n"
              "end-to-end 8970 stays 2-5x above 4xxx despite equal engine specs;\n"
              "the stage stack shows where the placement difference lives.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
