// Ablation: the DPZip LZ77 encoding design points of §3.2.3 — SRAM-bounded
// hash table size/associativity, first-fit vs best-of-ways matching, and
// the skip-on-miss distance. Reports compression ratio on Silesia-like 4 KB
// pages and the modelled throughput.

#include "bench/bench_util.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

struct Outcome {
  double ratio;
  double gbps;
  double sram_kb;
};

Outcome Measure(const DpzipLz77Config& cfg) {
  DpzipCodec codec(cfg);
  DpzipPipelineModel model;
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(64 * 1024, 42);
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  SimNanos busy = 0;
  for (const CorpusFile& f : corpus) {
    for (size_t off = 0; off + 4096 <= f.data.size(); off += 16384) {
      ByteVec out;
      Result<size_t> r = codec.Compress(ByteSpan(f.data.data() + off, 4096), &out);
      if (!r.ok()) {
        continue;
      }
      in_bytes += 4096;
      out_bytes += *r;
      busy += model.CompressLatency(codec.last_stats()).nanos;
    }
  }
  Outcome o;
  o.ratio = 100.0 * static_cast<double>(out_bytes) / static_cast<double>(in_bytes);
  o.gbps = busy == 0 ? 0 : GbPerSec(in_bytes, busy);
  o.sram_kb = static_cast<double>(cfg.hash_buckets) * cfg.ways * 4 / 1024.0;
  return o;
}

void Run() {
  PrintHeader("Ablation", "DPZip LZ77 hash table / matching policy (4 KB pages)");

  std::printf("\n(a) Hash table size (4-way FIFO, first-fit, skip-4)\n");
  PrintRow({"buckets", "SRAM KB", "ratio %", "GB/s"});
  PrintRule(4);
  for (uint32_t buckets : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    DpzipLz77Config cfg;
    cfg.hash_buckets = buckets;
    Outcome o = Measure(cfg);
    PrintRow({Fmt(buckets, 0), Fmt(o.sram_kb, 0), Fmt(o.ratio, 1), Fmt(o.gbps, 2)});
  }

  std::printf("\n(b) Associativity (2048 buckets)\n");
  PrintRow({"ways", "SRAM KB", "ratio %", "GB/s"});
  PrintRule(4);
  for (uint32_t ways : {1u, 2u, 4u, 8u}) {
    DpzipLz77Config cfg;
    cfg.ways = ways;
    Outcome o = Measure(cfg);
    PrintRow({Fmt(ways, 0), Fmt(o.sram_kb, 0), Fmt(o.ratio, 1), Fmt(o.gbps, 2)});
  }

  std::printf("\n(c) Hash functions per word (two-level candidate selection, §3.2.3)\n");
  PrintRow({"hashes", "ratio %", "GB/s"});
  PrintRule(3);
  for (bool dual : {false, true}) {
    DpzipLz77Config cfg;
    cfg.dual_hash = dual;
    Outcome o = Measure(cfg);
    PrintRow({dual ? "hash0+hash1" : "hash0 only", Fmt(o.ratio, 1), Fmt(o.gbps, 2)});
  }

  std::printf("\n(d) Matching policy\n");
  PrintRow({"policy", "ratio %", "GB/s"});
  PrintRule(3);
  for (bool first_fit : {true, false}) {
    DpzipLz77Config cfg;
    cfg.first_fit = first_fit;
    Outcome o = Measure(cfg);
    PrintRow({first_fit ? "first-fit" : "best-of-ways", Fmt(o.ratio, 1), Fmt(o.gbps, 2)});
  }

  std::printf("\n(e) Skip-on-miss distance (partial-lazy matching)\n");
  PrintRow({"skip", "ratio %", "GB/s"});
  PrintRule(3);
  for (uint32_t skip : {1u, 2u, 4u, 8u}) {
    DpzipLz77Config cfg;
    cfg.skip_on_miss = skip;
    Outcome o = Measure(cfg);
    PrintRow({Fmt(skip, 0), Fmt(o.ratio, 1), Fmt(o.gbps, 2)});
  }
  std::printf("\nDesign point in silicon: 2048 buckets x 4 ways (32 KB SRAM),\n"
              "first-fit, skip-4 — a few tenths of a point of ratio for a large\n"
              "simplification in pipeline control (§3.2.3).\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
