// Ablation: the DPZip LZ77 encoding design points of §3.2.3 — SRAM-bounded
// hash table size/associativity, first-fit vs best-of-ways matching, and
// the skip-on-miss distance. Reports compression ratio on Silesia-like 4 KB
// pages and the modelled throughput.

#include "bench/harness/experiment.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct Outcome {
  double ratio;
  double gbps;
  double sram_kb;
};

Outcome Measure(const DpzipLz77Config& cfg, size_t file_bytes, size_t stride) {
  DpzipCodec codec(cfg);
  DpzipPipelineModel model;
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(file_bytes, 42);
  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  SimNanos busy = 0;
  for (const CorpusFile& f : corpus) {
    for (size_t off = 0; off + 4096 <= f.data.size(); off += stride) {
      ByteVec out;
      Result<size_t> r = codec.Compress(ByteSpan(f.data.data() + off, 4096), &out);
      if (!r.ok()) {
        continue;
      }
      in_bytes += 4096;
      out_bytes += *r;
      busy += model.CompressLatency(codec.last_stats()).nanos;
    }
  }
  Outcome o;
  o.ratio = 100.0 * static_cast<double>(out_bytes) / static_cast<double>(in_bytes);
  o.gbps = busy == 0 ? 0 : GbPerSec(in_bytes, busy);
  o.sram_kb = static_cast<double>(cfg.hash_buckets) * cfg.ways * 4 / 1024.0;
  return o;
}

void Run(ExperimentContext& ctx) {
  const size_t file_bytes = 64 * 1024;
  const size_t stride = ctx.Pick(32768, 16384);  // quick: half the pages

  obs::Table& size_tbl = ctx.AddTable(
      "hash_size", "(a) Hash table size (4-way FIFO, first-fit, skip-4)",
      {Column("buckets", "", 0), Column("sram_kb", "SRAM KB", 0),
       Column("ratio_pct", "ratio %", 1), Column("gbps", "GB/s")});
  for (uint32_t buckets : {256u, 512u, 1024u, 2048u, 4096u, 8192u}) {
    DpzipLz77Config cfg;
    cfg.hash_buckets = buckets;
    Outcome o = Measure(cfg, file_bytes, stride);
    size_tbl.AddRow({buckets, o.sram_kb, o.ratio, o.gbps});
  }

  obs::Table& ways_tbl = ctx.AddTable(
      "associativity", "(b) Associativity (2048 buckets)",
      {Column("ways", "", 0), Column("sram_kb", "SRAM KB", 0),
       Column("ratio_pct", "ratio %", 1), Column("gbps", "GB/s")});
  for (uint32_t ways : {1u, 2u, 4u, 8u}) {
    DpzipLz77Config cfg;
    cfg.ways = ways;
    Outcome o = Measure(cfg, file_bytes, stride);
    ways_tbl.AddRow({ways, o.sram_kb, o.ratio, o.gbps});
  }

  obs::Table& hashes_tbl = ctx.AddTable(
      "hash_functions", "(c) Hash functions per word (two-level candidate selection, §3.2.3)",
      {Column("hashes"), Column("ratio_pct", "ratio %", 1), Column("gbps", "GB/s")});
  for (bool dual : {false, true}) {
    DpzipLz77Config cfg;
    cfg.dual_hash = dual;
    Outcome o = Measure(cfg, file_bytes, stride);
    hashes_tbl.AddRow({dual ? "hash0+hash1" : "hash0 only", o.ratio, o.gbps});
  }

  obs::Table& policy_tbl = ctx.AddTable(
      "matching_policy", "(d) Matching policy",
      {Column("policy"), Column("ratio_pct", "ratio %", 1), Column("gbps", "GB/s")});
  for (bool first_fit : {true, false}) {
    DpzipLz77Config cfg;
    cfg.first_fit = first_fit;
    Outcome o = Measure(cfg, file_bytes, stride);
    policy_tbl.AddRow({first_fit ? "first-fit" : "best-of-ways", o.ratio, o.gbps});
  }

  obs::Table& skip_tbl = ctx.AddTable(
      "skip_distance", "(e) Skip-on-miss distance (partial-lazy matching)",
      {Column("skip", "", 0), Column("ratio_pct", "ratio %", 1), Column("gbps", "GB/s")});
  for (uint32_t skip : {1u, 2u, 4u, 8u}) {
    DpzipLz77Config cfg;
    cfg.skip_on_miss = skip;
    Outcome o = Measure(cfg, file_bytes, stride);
    skip_tbl.AddRow({skip, o.ratio, o.gbps});
  }

  ctx.Note("Design point in silicon: 2048 buckets x 4 ways (32 KB SRAM),\n"
           "first-fit, skip-4 — a few tenths of a point of ratio for a large\n"
           "simplification in pipeline control (§3.2.3).");
}

CDPU_REGISTER_EXPERIMENT("ablation_hash_table", "Ablation",
                         "DPZip LZ77 hash table / matching policy (4 KB pages)", Run);

}  // namespace
}  // namespace cdpu
