// Fault-rate vs goodput sweep: how gracefully does the offload runtime
// degrade as the modelled device misbehaves? At rate 0 the fault path is
// provably silent (all counters zero); as the per-kind injection probability
// rises, retries and CPU fallbacks absorb the failures — goodput bends but
// every job still round-trips. The final section pins the device at rate
// 1.0 to show the health machine cutting over to full CPU fallback.
//
// This is the profiling view the paper's reliability discussion implies but
// never plots: the cost of the compress-then-verify + retry loop that real
// CDPUs ship.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/common/crc32.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/runtime/stats_export.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr uint32_t kClientThreads = 8;
constexpr size_t kChunk = 65536;

struct SweepPoint {
  RuntimeStats stats;
  double wall_seconds = 0;
  uint64_t verified = 0;
  uint64_t corrupt = 0;
};

SweepPoint RunAtRate(double rate, uint64_t jobs_per_thread) {
  RuntimeOptions opts;
  opts.device = Qat8970Config();
  opts.codec = "lz4";
  opts.queue_pairs = 4;
  opts.batch_size = 4;
  opts.engine_threads = 8;
  opts.fault_plan.seed = 0xfa0 + static_cast<uint64_t>(rate * 1000);
  opts.fault_plan.SetAllRates(rate);
  OffloadRuntime runtime(opts);

  std::vector<ByteVec> payloads;
  payloads.reserve(kClientThreads);
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    payloads.push_back(GenerateWithRatio(0.4, kChunk, 0x900d + t));
  }

  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> corrupt{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const ByteVec& original = payloads[t];
      uint32_t want_crc = Crc32(original);
      for (uint64_t i = 0; i < jobs_per_thread; ++i) {
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = t % 4;
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++corrupt;
          continue;
        }
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = t % 4;
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (dres.status.ok() && Crc32(dres.output) == want_crc) {
          ++verified;
        } else {
          ++corrupt;
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);

  SweepPoint point;
  point.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  point.stats = runtime.Snapshot();
  point.verified = verified.load();
  point.corrupt = corrupt.load();
  return point;
}

void Run(ExperimentContext& ctx) {
  const uint64_t jobs_per_thread = ctx.Pick(20, 60);
  const uint64_t total_jobs = kClientThreads * jobs_per_thread;

  obs::Table& t = ctx.AddTable(
      "goodput_vs_rate",
      "Goodput vs injected fault rate (8 clients, 64 KB lz4 round trips)",
      {Column("rate", "", 2), Column("goodput_mbps", "goodput MB/s", 1), Column("verified"),
       Column("faults", "", 0), Column("retries", "", 0), Column("fallbacks", "", 0),
       Column("degraded", "", 0)});
  std::vector<double> rates = ctx.quick() ? std::vector<double>{0.0, 0.05, 0.2}
                                          : std::vector<double>{0.0, 0.02, 0.05, 0.1, 0.2};
  for (double rate : rates) {
    SweepPoint p = RunAtRate(rate, jobs_per_thread);
    double goodput = static_cast<double>(p.verified) * kChunk / 1e6 /
                     (p.wall_seconds > 0 ? p.wall_seconds : 1);
    t.AddRow({rate, goodput,
              std::to_string(p.verified) + "/" + std::to_string(total_jobs),
              p.stats.faults_injected, p.stats.retries, p.stats.fallbacks,
              p.stats.unhealthy_transitions});
    if (p.corrupt != 0) {
      ctx.Note("!! " + std::to_string(p.corrupt) + " corrupt round trips at rate " +
               Fmt(rate, 2) + " — recovery failed");
    }
  }

  obs::Table& dead_tbl = ctx.AddTable(
      "dead_device", "Dead device (every fault kind at rate 1.0): full CPU fallback",
      {Column("verified"), Column("fallbacks", "", 0), Column("degradations", "", 0),
       Column("reprobes", "re-probes", 0)});
  SweepPoint dead = RunAtRate(1.0, jobs_per_thread);
  dead_tbl.AddRow({std::to_string(dead.verified) + "/" + std::to_string(total_jobs),
                   dead.stats.fallbacks, dead.stats.unhealthy_transitions,
                   dead.stats.reprobes});
  ExportRuntimeStats(dead.stats, "dead_device", &ctx.metrics());

  ctx.Note("Every row must keep verified at 100%: injected faults cost\n"
           "goodput (retries, backoff, CPU fallback) but never correctness.");
}

CDPU_REGISTER_EXPERIMENT("fault_degradation", "Fault degradation",
                         "Goodput vs injected fault rate through the offload runtime", Run);

}  // namespace
}  // namespace cdpu
