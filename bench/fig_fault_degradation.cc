// Fault-rate vs goodput sweep: how gracefully does the offload runtime
// degrade as the modelled device misbehaves? At rate 0 the fault path is
// provably silent (all counters zero); as the per-kind injection probability
// rises, retries and CPU fallbacks absorb the failures — goodput bends but
// every job still round-trips. The final section pins the device at rate
// 1.0 to show the health machine cutting over to full CPU fallback.
//
// This is the profiling view the paper's reliability discussion implies but
// never plots: the cost of the compress-then-verify + retry loop that real
// CDPUs ship.

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/crc32.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

constexpr uint32_t kClientThreads = 8;
constexpr uint64_t kJobsPerThread = 60;
constexpr size_t kChunk = 65536;

struct SweepPoint {
  RuntimeStats stats;
  double wall_seconds = 0;
  uint64_t verified = 0;
  uint64_t corrupt = 0;
};

SweepPoint RunAtRate(double rate) {
  RuntimeOptions opts;
  opts.device = Qat8970Config();
  opts.codec = "lz4";
  opts.queue_pairs = 4;
  opts.batch_size = 4;
  opts.engine_threads = 8;
  opts.fault_plan.seed = 0xfa0 + static_cast<uint64_t>(rate * 1000);
  opts.fault_plan.SetAllRates(rate);
  OffloadRuntime runtime(opts);

  std::vector<ByteVec> payloads;
  payloads.reserve(kClientThreads);
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    payloads.push_back(GenerateWithRatio(0.4, kChunk, 0x900d + t));
  }

  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> corrupt{0};
  auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      const ByteVec& original = payloads[t];
      uint32_t want_crc = Crc32(original);
      for (uint64_t i = 0; i < kJobsPerThread; ++i) {
        OffloadRequest creq;
        creq.op = CdpuOp::kCompress;
        creq.input = original;
        creq.queue_pair = t % 4;
        OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++corrupt;
          continue;
        }
        OffloadRequest dreq;
        dreq.op = CdpuOp::kDecompress;
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = t % 4;
        OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (dres.status.ok() && Crc32(dres.output) == want_crc) {
          ++verified;
        } else {
          ++corrupt;
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Shutdown(OffloadRuntime::ShutdownMode::kDrain);

  SweepPoint point;
  point.wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  point.stats = runtime.Snapshot();
  point.verified = verified.load();
  point.corrupt = corrupt.load();
  return point;
}

void Run() {
  PrintHeader("Fault degradation",
              "Goodput vs injected fault rate (8 clients, 64 KB lz4 round trips)");
  PrintRow({"rate", "goodput MB/s", "verified", "faults", "retries", "fallbacks", "degraded"},
           12);
  PrintRule(7, 12);
  for (double rate : {0.0, 0.02, 0.05, 0.1, 0.2}) {
    SweepPoint p = RunAtRate(rate);
    double goodput =
        static_cast<double>(p.verified) * kChunk / 1e6 / (p.wall_seconds > 0 ? p.wall_seconds : 1);
    PrintRow({Fmt(rate, 2), Fmt(goodput, 1),
              Fmt(static_cast<double>(p.verified), 0) + "/" +
                  Fmt(static_cast<double>(kClientThreads * kJobsPerThread), 0),
              Fmt(static_cast<double>(p.stats.faults_injected), 0),
              Fmt(static_cast<double>(p.stats.retries), 0),
              Fmt(static_cast<double>(p.stats.fallbacks), 0),
              Fmt(static_cast<double>(p.stats.unhealthy_transitions), 0)},
             12);
    if (p.corrupt != 0) {
      std::printf("!! %llu corrupt round trips at rate %.2f — recovery failed\n",
                  static_cast<unsigned long long>(p.corrupt), rate);
    }
  }

  std::printf("\nDead device (every fault kind at rate 1.0): full CPU fallback\n");
  SweepPoint dead = RunAtRate(1.0);
  std::printf("  verified %llu/%llu, fallbacks %llu, degradations %llu, re-probes %llu\n",
              static_cast<unsigned long long>(dead.verified),
              static_cast<unsigned long long>(kClientThreads * kJobsPerThread),
              static_cast<unsigned long long>(dead.stats.fallbacks),
              static_cast<unsigned long long>(dead.stats.unhealthy_transitions),
              static_cast<unsigned long long>(dead.stats.reprobes));
  std::printf("\nEvery row must keep verified at 100%%: injected faults cost\n"
              "goodput (retries, backoff, CPU fallback) but never correctness.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
