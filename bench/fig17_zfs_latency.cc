// Figure 17: ZFS-like filesystem latency across record sizes (4K-128K) for
// OFF, CPU Deflate, QAT 8970 and DP-CSD (QAT 4xxx is excluded, matching the
// paper: ZFS does not support it). Finding 10: DP-CSD stays near OFF at
// every record size; the CPU/QAT gap widens with record size.

#include <memory>

#include "bench/harness/experiment.h"
#include "src/fs/zfs_sim.h"
#include "src/ssd/scheme.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct Point {
  double write_us;
  double read_us;
};

Point RunScheme(CompressionScheme scheme, size_t record_bytes, int records) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 256 * 1024));
  ZfsConfig cfg;
  cfg.record_bytes = record_bytes;
  ZfsSim fs(cfg, ssd.get(), MakeSchemeBackend(scheme));

  std::vector<uint8_t> data = GenerateTextLike(record_bytes * records, 31);
  SimNanos t = 0;
  double write_us = 0;
  for (int i = 0; i < records; ++i) {
    Result<SimNanos> w = fs.WriteRecord(static_cast<uint64_t>(i) * record_bytes,
                                        ByteSpan(data.data() + i * record_bytes, record_bytes),
                                        t);
    if (!w.ok()) {
      return {0, 0};
    }
    write_us += static_cast<double>(*w - t) / 1e3;
    t = *w;
  }
  double read_us = 0;
  for (int k = 0; k < records; ++k) {
    int i = (k * 7) % records;  // strided order: no adjacent-record reuse
    Result<ZfsSim::ReadOutcome> r =
        fs.Read(static_cast<uint64_t>(i) * record_bytes, 4096, t);
    if (!r.ok()) {
      return {0, 0};
    }
    read_us += static_cast<double>(r->completion - t) / 1e3;
    t = r->completion;
  }
  return {write_us / records, read_us / records};
}

void Run(ExperimentContext& ctx) {
  const int records = static_cast<int>(ctx.Pick(8, 16));
  for (bool write : {true, false}) {
    obs::Table& t = ctx.AddTable(
        write ? "write_latency" : "read_latency",
        write ? "write latency (us)" : "read(4K) latency (us)",
        {Column("record_kb", "record KB", 0), Column("off", "OFF", 1),
         Column("cpu", "CPU", 1), Column("qat_8970", "QAT-8970", 1),
         Column("dp_csd", "DP-CSD", 1)});
    for (size_t kb : {4u, 8u, 16u, 32u, 64u, 128u}) {
      Point off = RunScheme(CompressionScheme::kOff, kb * 1024, records);
      Point cpu = RunScheme(CompressionScheme::kCpu, kb * 1024, records);
      Point qat = RunScheme(CompressionScheme::kQat8970, kb * 1024, records);
      Point csd = RunScheme(CompressionScheme::kDpCsd, kb * 1024, records);
      t.AddRow({kb, write ? off.write_us : off.read_us, write ? cpu.write_us : cpu.read_us,
                write ? qat.write_us : qat.read_us, write ? csd.write_us : csd.read_us});
    }
  }
  ctx.Note("Paper shape: CPU Deflate worst and worsening with record size;\n"
           "QAT 8970 only slightly better (driver stack); DP-CSD tracks OFF\n"
           "with minimal overhead at every size (Finding 10).");
}

CDPU_REGISTER_EXPERIMENT("fig17", "Figure 17", "ZFS-like FS latency vs record size", Run);

}  // namespace
}  // namespace cdpu
