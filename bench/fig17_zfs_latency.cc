// Figure 17: ZFS-like filesystem latency across record sizes (4K-128K) for
// OFF, CPU Deflate, QAT 8970 and DP-CSD (QAT 4xxx is excluded, matching the
// paper: ZFS does not support it). Finding 10: DP-CSD stays near OFF at
// every record size; the CPU/QAT gap widens with record size.

#include <memory>

#include "bench/bench_util.h"
#include "src/fs/zfs_sim.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

struct Point {
  double write_us;
  double read_us;
};

Point RunScheme(CompressionScheme scheme, size_t record_bytes) {
  auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 256 * 1024));
  ZfsConfig cfg;
  cfg.record_bytes = record_bytes;
  ZfsSim fs(cfg, ssd.get(), MakeSchemeBackend(scheme));

  constexpr int kRecords = 16;
  std::vector<uint8_t> data = GenerateTextLike(record_bytes * kRecords, 31);
  SimNanos t = 0;
  double write_us = 0;
  for (int i = 0; i < kRecords; ++i) {
    Result<SimNanos> w = fs.WriteRecord(static_cast<uint64_t>(i) * record_bytes,
                                        ByteSpan(data.data() + i * record_bytes, record_bytes),
                                        t);
    if (!w.ok()) {
      return {0, 0};
    }
    write_us += static_cast<double>(*w - t) / 1e3;
    t = *w;
  }
  double read_us = 0;
  for (int k = 0; k < kRecords; ++k) {
    int i = (k * 7) % kRecords;  // strided order: no adjacent-record reuse
    Result<ZfsSim::ReadOutcome> r =
        fs.Read(static_cast<uint64_t>(i) * record_bytes, 4096, t);
    if (!r.ok()) {
      return {0, 0};
    }
    read_us += static_cast<double>(r->completion - t) / 1e3;
    t = r->completion;
  }
  return {write_us / kRecords, read_us / kRecords};
}

void Run() {
  PrintHeader("Figure 17", "ZFS-like FS latency vs record size");
  for (const char* metric : {"write", "read(4K)"}) {
    std::printf("\n%s latency (us)\n", metric);
    PrintRow({"record KB", "OFF", "CPU", "QAT-8970", "DP-CSD"});
    PrintRule(5);
    for (size_t kb : {4u, 8u, 16u, 32u, 64u, 128u}) {
      bool write = metric[0] == 'w';
      Point off = RunScheme(CompressionScheme::kOff, kb * 1024);
      Point cpu = RunScheme(CompressionScheme::kCpu, kb * 1024);
      Point qat = RunScheme(CompressionScheme::kQat8970, kb * 1024);
      Point csd = RunScheme(CompressionScheme::kDpCsd, kb * 1024);
      PrintRow({Fmt(kb, 0), Fmt(write ? off.write_us : off.read_us, 1),
                Fmt(write ? cpu.write_us : cpu.read_us, 1),
                Fmt(write ? qat.write_us : qat.read_us, 1),
                Fmt(write ? csd.write_us : csd.read_us, 1)});
    }
  }
  std::printf("\nPaper shape: CPU Deflate worst and worsening with record size;\n"
              "QAT 8970 only slightly better (driver stack); DP-CSD tracks OFF\n"
              "with minimal overhead at every size (Finding 10).\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
