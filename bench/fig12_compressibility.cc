// Figure 12: throughput vs data compressibility (achievable ratio 10-100%).
// Device rows use the analytic models; the DP-CSD and DPZip rows run real
// entropy-dialled data through the functional DPZip codec — DP-CSD through
// the full SSD (NAND + FTL layout effects), DPZip through a DRAM-backed
// path (pipeline model only), reproducing the paper's divergence between
// the two at poor compressibility.

#include <algorithm>

#include "bench/harness/experiment.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/hw/device_configs.h"
#include "src/ssd/scheme.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

constexpr uint64_t kBytes = 4096;

struct Scale {
  uint64_t requests;
  int dpzip_pages;
  int csd_pages;
};

double DeviceGbps(const CdpuConfig& cfg, CdpuOp op, double ratio, uint32_t threads,
                  uint64_t requests) {
  CdpuDevice dev(cfg);
  return dev.RunClosedLoop(op, requests, kBytes, ratio, threads).gbps;
}

// DPZip functional path: compress real data of the given compressibility,
// charge the pipeline model (DRAM-backed, no NAND).
double DpzipFunctionalGbps(double ratio, bool decompress, int pages) {
  DpzipCodec codec;
  DpzipPipelineModel model;
  uint64_t bytes = 0;
  SimNanos busy = 0;
  for (int i = 0; i < pages; ++i) {
    std::vector<uint8_t> page = GenerateWithRatio(ratio, kBytes, 100 + i);
    ByteVec compressed;
    if (!codec.Compress(page, &compressed).ok()) {
      continue;
    }
    if (decompress) {
      ByteVec out;
      if (!codec.Decompress(compressed, &out).ok()) {
        continue;
      }
      busy += model.DecompressLatency(codec.last_stats()).nanos;
    } else {
      busy += model.CompressLatency(codec.last_stats()).nanos;
    }
    bytes += kBytes;
  }
  // Two pipelines run in parallel in the device.
  return busy == 0 ? 0 : 2.0 * GbPerSec(bytes, busy);
}

// DP-CSD: same data through the full SSD simulator (FTL packing + NAND),
// at queue depth 64 like an FIO run — per-lane clocks share the NAND array.
double DpCsdGbps(double ratio, bool reads, int pages) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 32 * 1024));
  constexpr int kQueueDepth = 64;
  std::vector<SimNanos> lane(kQueueDepth, 0);
  uint64_t bytes = 0;
  for (int i = 0; i < pages; ++i) {
    std::vector<uint8_t> page = GenerateWithRatio(ratio, kBytes, 200 + i);
    int l = i % kQueueDepth;
    Result<SsdIoResult> w = ssd.Write(static_cast<uint64_t>(i), page, lane[l]);
    if (!w.ok()) {
      break;
    }
    lane[l] = w->completion;
    bytes += kBytes;
  }
  SimNanos write_end = *std::max_element(lane.begin(), lane.end());
  if (!reads) {
    return GbPerSec(bytes, write_end);
  }
  std::fill(lane.begin(), lane.end(), write_end);
  bytes = 0;
  for (int i = 0; i < pages; ++i) {
    ByteVec out;
    int l = i % kQueueDepth;
    Result<SsdIoResult> r = ssd.Read(static_cast<uint64_t>(i), &out, lane[l]);
    if (!r.ok()) {
      break;
    }
    lane[l] = r->completion;
    bytes += kBytes;
  }
  SimNanos read_end = *std::max_element(lane.begin(), lane.end());
  return GbPerSec(bytes, read_end - write_end);
}

void RunDirection(ExperimentContext& ctx, const Scale& scale, bool decompress) {
  CdpuOp op = decompress ? CdpuOp::kDecompress : CdpuOp::kCompress;
  obs::Table& t = ctx.AddTable(
      decompress ? "decompress_gbps" : "compress_gbps",
      decompress ? "(b) Decompression GB/s" : "(a) Compression GB/s",
      {Column("ratio_pct", "ratio %", 0), Column("qat_8970", "qat-8970"),
       Column("qat_4xxx", "qat-4xxx"), Column("dpzip"), Column("dp_csd", "dp-csd")});
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    t.AddRow({ratio * 100, DeviceGbps(Qat8970Config(), op, ratio, 64, scale.requests),
              DeviceGbps(Qat4xxxConfig(), op, ratio, 64, scale.requests),
              DpzipFunctionalGbps(ratio, decompress, scale.dpzip_pages),
              DpCsdGbps(ratio, decompress, scale.csd_pages)});
  }
}

void Run(ExperimentContext& ctx) {
  Scale scale;
  scale.requests = ctx.Pick(1200, 6000);
  scale.dpzip_pages = static_cast<int>(ctx.Pick(24, 64));
  scale.csd_pages = static_cast<int>(ctx.Pick(256, 1024));
  RunDirection(ctx, scale, /*decompress=*/false);
  RunDirection(ctx, scale, /*decompress=*/true);
  ctx.Note("Paper shape: QAT 4xxx drops 67%/77% on incompressible data, 8970\n"
           "drops less steeply, DPZip stays within ~15%; DP-CSD degrades more\n"
           "than DPZip (FTL layout + NAND) and lacks the 80-100% rebound.");
}

CDPU_REGISTER_EXPERIMENT("fig12", "Figure 12",
                         "Throughput vs data compressibility (4 KB)", Run);

}  // namespace
}  // namespace cdpu
