// Figure 12: throughput vs data compressibility (achievable ratio 10-100%).
// Device rows use the analytic models; the DP-CSD and DPZip rows run real
// entropy-dialled data through the functional DPZip codec — DP-CSD through
// the full SSD (NAND + FTL layout effects), DPZip through a DRAM-backed
// path (pipeline model only), reproducing the paper's divergence between
// the two at poor compressibility.

#include <algorithm>

#include "bench/bench_util.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/hw/device_configs.h"
#include "src/ssd/scheme.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

constexpr uint64_t kBytes = 4096;
constexpr uint64_t kRequests = 6000;

double DeviceGbps(const CdpuConfig& cfg, CdpuOp op, double ratio, uint32_t threads) {
  CdpuDevice dev(cfg);
  return dev.RunClosedLoop(op, kRequests, kBytes, ratio, threads).gbps;
}

// DPZip functional path: compress real data of the given compressibility,
// charge the pipeline model (DRAM-backed, no NAND).
double DpzipFunctionalGbps(double ratio, bool decompress) {
  DpzipCodec codec;
  DpzipPipelineModel model;
  uint64_t bytes = 0;
  SimNanos busy = 0;
  for (int i = 0; i < 64; ++i) {
    std::vector<uint8_t> page = GenerateWithRatio(ratio, kBytes, 100 + i);
    ByteVec compressed;
    if (!codec.Compress(page, &compressed).ok()) {
      continue;
    }
    if (decompress) {
      ByteVec out;
      if (!codec.Decompress(compressed, &out).ok()) {
        continue;
      }
      busy += model.DecompressLatency(codec.last_stats()).nanos;
    } else {
      busy += model.CompressLatency(codec.last_stats()).nanos;
    }
    bytes += kBytes;
  }
  // Two pipelines run in parallel in the device.
  return busy == 0 ? 0 : 2.0 * GbPerSec(bytes, busy);
}

// DP-CSD: same data through the full SSD simulator (FTL packing + NAND),
// at queue depth 64 like an FIO run — per-lane clocks share the NAND array.
double DpCsdGbps(double ratio, bool reads) {
  SimSsd ssd(MakeSchemeSsdConfig(CompressionScheme::kDpCsd, 32 * 1024));
  constexpr int kPages = 1024;
  constexpr int kQueueDepth = 64;
  std::vector<SimNanos> lane(kQueueDepth, 0);
  uint64_t bytes = 0;
  for (int i = 0; i < kPages; ++i) {
    std::vector<uint8_t> page = GenerateWithRatio(ratio, kBytes, 200 + i);
    int l = i % kQueueDepth;
    Result<SsdIoResult> w = ssd.Write(static_cast<uint64_t>(i), page, lane[l]);
    if (!w.ok()) {
      break;
    }
    lane[l] = w->completion;
    bytes += kBytes;
  }
  SimNanos write_end = *std::max_element(lane.begin(), lane.end());
  if (!reads) {
    return GbPerSec(bytes, write_end);
  }
  std::fill(lane.begin(), lane.end(), write_end);
  bytes = 0;
  for (int i = 0; i < kPages; ++i) {
    ByteVec out;
    int l = i % kQueueDepth;
    Result<SsdIoResult> r = ssd.Read(static_cast<uint64_t>(i), &out, lane[l]);
    if (!r.ok()) {
      break;
    }
    lane[l] = r->completion;
    bytes += kBytes;
  }
  SimNanos read_end = *std::max_element(lane.begin(), lane.end());
  return GbPerSec(bytes, read_end - write_end);
}

void Run() {
  PrintHeader("Figure 12", "Throughput vs data compressibility (4 KB)");

  std::printf("\n(a) Compression GB/s\n");
  PrintRow({"ratio %", "qat-8970", "qat-4xxx", "dpzip", "dp-csd"});
  PrintRule(5);
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    PrintRow({Fmt(ratio * 100, 0),
              Fmt(DeviceGbps(Qat8970Config(), CdpuOp::kCompress, ratio, 64), 2),
              Fmt(DeviceGbps(Qat4xxxConfig(), CdpuOp::kCompress, ratio, 64), 2),
              Fmt(DpzipFunctionalGbps(ratio, false), 2), Fmt(DpCsdGbps(ratio, false), 2)});
  }

  std::printf("\n(b) Decompression GB/s\n");
  PrintRow({"ratio %", "qat-8970", "qat-4xxx", "dpzip", "dp-csd"});
  PrintRule(5);
  for (double ratio : {0.1, 0.3, 0.5, 0.7, 0.9, 1.0}) {
    PrintRow({Fmt(ratio * 100, 0),
              Fmt(DeviceGbps(Qat8970Config(), CdpuOp::kDecompress, ratio, 64), 2),
              Fmt(DeviceGbps(Qat4xxxConfig(), CdpuOp::kDecompress, ratio, 64), 2),
              Fmt(DpzipFunctionalGbps(ratio, true), 2), Fmt(DpCsdGbps(ratio, true), 2)});
  }
  std::printf("\nPaper shape: QAT 4xxx drops 67%%/77%% on incompressible data, 8970\n"
              "drops less steeply, DPZip stays within ~15%%; DP-CSD degrades more\n"
              "than DPZip (FTL layout + NAND) and lacks the 80-100%% rebound.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
