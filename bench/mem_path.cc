// mem_path: the data-movement experiment behind the pooled-buffer refactor
// (ISSUE 8), the host-side companion to the paper's Figs 10/11 — for small
// blocks the cost of an offload is dominated by staging around the
// accelerator, not the compression kernel. Both arms run the *same* service
// code path; the legacy arm only flips ServerOptions::pool.pooling off,
// which sends every buffer to the heap and restores the copy-out frame
// parse. Per payload size the table reports throughput next to the two
// counters the refactor exists to drive down: allocator touches and staging
// copies per request.

#include <string>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"
#include "src/svc/loadgen.h"
#include "src/svc/server.h"
#include "src/svc/stats_export.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

std::string PayloadLabel(size_t bytes) {
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    return std::to_string(bytes / (1024 * 1024)) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "K";
  }
  return std::to_string(bytes) + "B";
}

void Run(ExperimentContext& ctx) {
  const std::vector<size_t> payloads =
      ctx.quick() ? std::vector<size_t>{4096, 65536}
                  : std::vector<size_t>{4096, 32768, 65536, 262144};
  const uint64_t requests_per_client = ctx.Pick(16, 96);
  const uint64_t warmup_per_client = ctx.Pick(8, 16);

  obs::Table& table = ctx.AddTable(
      "mem_path", "Pooled vs legacy data path (closed loop, compress + verify)",
      {Column("arm", "arm"), Column("payload", "payload"), Column("mbps", "MB/s", 1),
       Column("p99_us", "p99 us", 1), Column("allocs_req", "allocs/req", 3),
       Column("copies_req", "copies/req", 3), Column("copy_kb_req", "copy KB/req", 2)});

  for (bool pooled : {true, false}) {
    const std::string arm = pooled ? "pooled" : "legacy";
    svc::ServerOptions sopts;
    sopts.runtime.device = Qat8970Config();
    sopts.pool.pooling = pooled;
    svc::ServiceServer server(sopts);
    Status started = server.Start();
    if (!started.ok()) {
      ctx.Note(arm + " arm failed to start: " + started.ToString());
      continue;
    }

    for (size_t payload : payloads) {
      svc::LoadGenOptions lopts;
      lopts.port = server.port();
      lopts.clients = 4;
      lopts.requests_per_client = requests_per_client;
      lopts.warmup_requests_per_client = warmup_per_client;
      lopts.payload_bytes = payload;
      lopts.codec = "lz4";
      Result<svc::LoadGenReport> run = RunClosedLoop(lopts);
      if (!run.ok()) {
        ctx.Note(arm + "/" + PayloadLabel(payload) + " failed: " + run.status().ToString());
        continue;
      }
      svc::LoadGenReport report = run.value();  // Percentile() sorts in place
      const double copy_kb_per_req =
          report.measured_calls > 0
              ? static_cast<double>(report.mem_path.payload_copy_bytes) / 1024.0 /
                    static_cast<double>(report.measured_calls)
              : 0;
      table.AddRow({arm, PayloadLabel(payload), report.throughput_mbps(),
                    report.latency_us.Percentile(99), report.allocs_per_request(),
                    report.copies_per_request(), copy_kb_per_req});

      const std::string key = arm + ".p" + PayloadLabel(payload) + ".";
      ctx.metrics().Gauge(key + "mbps", report.throughput_mbps());
      ctx.metrics().Gauge(key + "p99_us", report.latency_us.Percentile(99));
      ctx.metrics().Gauge(key + "allocs_per_request", report.allocs_per_request());
      ctx.metrics().Gauge(key + "copies_per_request", report.copies_per_request());
      ctx.metrics().Gauge(key + "copy_kb_per_request", copy_kb_per_req);
      ctx.metrics().Count(key + "ok", report.requests_ok);
      ctx.metrics().Count(key + "failed", report.requests_failed);
    }

    server.Stop();
    ExportServiceStats(server.Snapshot(), "svc." + arm + ".", &ctx.metrics());
  }

  ctx.Note("Both arms run the identical code path; the legacy arm disables the\n"
           "buffer pool (every segment heap-allocated, payloads copied out of the\n"
           "receive buffer), reproducing the pre-pool memory behaviour.");
}

CDPU_REGISTER_EXPERIMENT("mem_path", "Memory path ablation",
                         "Pooled vs legacy buffer path: allocs/copies/MBps per payload size",
                         Run);

}  // namespace
}  // namespace cdpu
