// Figure 7: compression-ratio distributions over the (synthetic) Silesia
// corpus at 4 KB and 64 KB granularity for Deflate, Zstd, DPZip, LZ4 and
// Snappy. Ratio = compressed/original, lower is better. QAT devices run
// Deflate, so the Deflate row doubles as QAT 8970/4xxx.

#include <memory>

#include "bench/bench_util.h"
#include "src/codecs/codec.h"
#include "src/core/dpzip_codec.h"
#include "src/common/stats.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

void MeasureCodec(const std::string& name, Codec* codec,
                  const std::vector<CorpusFile>& corpus, size_t chunk) {
  SampleSet ratios;
  for (const CorpusFile& f : corpus) {
    for (size_t off = 0; off + chunk <= f.data.size(); off += chunk) {
      ratios.Add(codec->MeasureRatio(ByteSpan(f.data.data() + off, chunk)));
    }
  }
  PrintRow({name, Fmt(ratios.Percentile(10) * 100, 1), Fmt(ratios.Median() * 100, 1),
            Fmt(ratios.Mean() * 100, 1), Fmt(ratios.Percentile(90) * 100, 1)});
}

void RunGranularity(const std::vector<CorpusFile>& corpus, size_t chunk) {
  std::printf("\nGranularity: %zu KB chunks (ratio %%, lower is better)\n", chunk / 1024);
  PrintRow({"codec", "p10", "median", "mean", "p90"});
  PrintRule(5);
  std::unique_ptr<Codec> deflate = MakeCodec("deflate-1");
  std::unique_ptr<Codec> zstd = MakeCodec("zstd-1");
  std::unique_ptr<Codec> lz4 = MakeCodec("lz4");
  std::unique_ptr<Codec> snappy = MakeCodec("snappy");
  DpzipCodec dpzip;

  MeasureCodec("deflate/QAT", deflate.get(), corpus, chunk);
  MeasureCodec("zstd-1", zstd.get(), corpus, chunk);
  if (chunk == 4096) {
    MeasureCodec("dpzip", &dpzip, corpus, chunk);
  } else {
    // DPZip always operates on 4 KB pages regardless of IO size (Finding 1):
    // chunk the input internally.
    SampleSet ratios;
    for (const CorpusFile& f : corpus) {
      for (size_t off = 0; off + chunk <= f.data.size(); off += chunk) {
        uint64_t total = 0;
        for (size_t p = 0; p < chunk; p += 4096) {
          ByteVec out;
          Result<size_t> r = dpzip.Compress(ByteSpan(f.data.data() + off + p, 4096), &out);
          total += r.ok() ? *r : 4096;
        }
        ratios.Add(static_cast<double>(total) / static_cast<double>(chunk));
      }
    }
    PrintRow({"dpzip(4K pages)", Fmt(ratios.Percentile(10) * 100, 1),
              Fmt(ratios.Median() * 100, 1), Fmt(ratios.Mean() * 100, 1),
              Fmt(ratios.Percentile(90) * 100, 1)});
  }
  MeasureCodec("lz4", lz4.get(), corpus, chunk);
  MeasureCodec("snappy", snappy.get(), corpus, chunk);
}

void Run() {
  PrintHeader("Figure 7", "Compression-ratio distributions, Silesia-like corpus");
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(192 * 1024, 42);
  RunGranularity(corpus, 4096);
  RunGranularity(corpus, 65536);
  std::printf("\nPaper shape: Deflate/Zstd best, DPZip close behind (4K ~45%% vs 43.1%%),\n"
              "LZ4/Snappy ~20pp worse; 64K improves windowed codecs, DPZip stays flat.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
