// Figure 7: compression-ratio distributions over the (synthetic) Silesia
// corpus at 4 KB and 64 KB granularity for Deflate, Zstd, DPZip, LZ4 and
// Snappy. Ratio = compressed/original, lower is better. QAT devices run
// Deflate, so the Deflate row doubles as QAT 8970/4xxx.

#include <memory>

#include "bench/harness/experiment.h"
#include "src/codecs/codec.h"
#include "src/common/stats.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

void AddRatioRow(obs::Table& t, const std::string& name, SampleSet* ratios) {
  t.AddRow({name, ratios->Percentile(10) * 100, ratios->Median() * 100, ratios->Mean() * 100,
            ratios->Percentile(90) * 100});
}

void MeasureCodec(obs::Table& t, const std::string& name, Codec* codec,
                  const std::vector<CorpusFile>& corpus, size_t chunk) {
  SampleSet ratios;
  for (const CorpusFile& f : corpus) {
    for (size_t off = 0; off + chunk <= f.data.size(); off += chunk) {
      ratios.Add(codec->MeasureRatio(ByteSpan(f.data.data() + off, chunk)));
    }
  }
  AddRatioRow(t, name, &ratios);
}

void RunGranularity(ExperimentContext& ctx, const std::vector<CorpusFile>& corpus,
                    size_t chunk) {
  obs::Table& t = ctx.AddTable(
      "ratio_" + std::to_string(chunk / 1024) + "k",
      "Granularity: " + std::to_string(chunk / 1024) + " KB chunks (ratio %, lower is better)",
      {Column("codec"), Column("p10", "", 1), Column("median", "", 1), Column("mean", "", 1),
       Column("p90", "", 1)});
  std::unique_ptr<Codec> deflate = MakeCodec("deflate-1");
  std::unique_ptr<Codec> zstd = MakeCodec("zstd-1");
  std::unique_ptr<Codec> lz4 = MakeCodec("lz4");
  std::unique_ptr<Codec> snappy = MakeCodec("snappy");
  DpzipCodec dpzip;

  MeasureCodec(t, "deflate/QAT", deflate.get(), corpus, chunk);
  MeasureCodec(t, "zstd-1", zstd.get(), corpus, chunk);
  if (chunk == 4096) {
    MeasureCodec(t, "dpzip", &dpzip, corpus, chunk);
  } else {
    // DPZip always operates on 4 KB pages regardless of IO size (Finding 1):
    // chunk the input internally.
    SampleSet ratios;
    for (const CorpusFile& f : corpus) {
      for (size_t off = 0; off + chunk <= f.data.size(); off += chunk) {
        uint64_t total = 0;
        for (size_t p = 0; p < chunk; p += 4096) {
          ByteVec out;
          Result<size_t> r = dpzip.Compress(ByteSpan(f.data.data() + off + p, 4096), &out);
          total += r.ok() ? *r : 4096;
        }
        ratios.Add(static_cast<double>(total) / static_cast<double>(chunk));
      }
    }
    AddRatioRow(t, "dpzip(4K pages)", &ratios);
  }
  MeasureCodec(t, "lz4", lz4.get(), corpus, chunk);
  MeasureCodec(t, "snappy", snappy.get(), corpus, chunk);
}

void Run(ExperimentContext& ctx) {
  std::vector<CorpusFile> corpus =
      SilesiaLikeCorpus(ctx.Pick(96, 192) * 1024, 42);
  RunGranularity(ctx, corpus, 4096);
  RunGranularity(ctx, corpus, 65536);
  ctx.Note("Paper shape: Deflate/Zstd best, DPZip close behind (4K ~45% vs 43.1%),\n"
           "LZ4/Snappy ~20pp worse; 64K improves windowed codecs, DPZip stays flat.");
}

CDPU_REGISTER_EXPERIMENT("fig07", "Figure 7",
                         "Compression-ratio distributions, Silesia-like corpus", Run);

}  // namespace
}  // namespace cdpu
