// cdpu_bench — the single driver for every figure/table reproduction.
// See bench/harness/driver.h for the command set.

#include <string>
#include <vector>

#include "bench/harness/driver.h"
#include "src/core/dpzip_codec.h"

int main(int argc, char** argv) {
  cdpu::DpzipCodec::RegisterWithFactory();
  std::vector<std::string> args(argv + 1, argv + argc);
  return cdpu::bench::BenchMain("cdpu_bench", args);
}
