#include "bench/harness/driver.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>

#include "bench/harness/experiment.h"

namespace cdpu {
namespace bench {
namespace {

int Usage(const std::string& prog) {
  std::fprintf(stderr,
               "usage: %s list\n"
               "       %s run <name>... [--preset=quick|paper] [--json=PATH]\n"
               "                [--out-dir=DIR] [--no-json] [--quiet]\n"
               "                [--devices=NAME[:COUNT],...] [--placement=POLICY]\n"
               "       %s run --all [flags]\n"
               "       %s validate <file.json>...\n",
               prog.c_str(), prog.c_str(), prog.c_str(), prog.c_str());
  return 2;
}

// `list` takes no operands; swallowing stray args here used to hide typos
// like `list --all` (the flag parity bug this driver shares with cdpu_cli).
int ListExperiments(const std::string& prog, const std::vector<std::string>& args) {
  if (!args.empty()) {
    std::fprintf(stderr, "unknown argument: %s\n", args.front().c_str());
    return Usage(prog);
  }
  const ExperimentRegistry& registry = ExperimentRegistry::Global();
  size_t width = 0;
  for (const ExperimentInfo* e : registry.All()) {
    width = std::max(width, e->name.size());
  }
  for (const ExperimentInfo* e : registry.All()) {
    std::printf("%-*s  %-10s %s\n", static_cast<int>(width), e->name.c_str(),
                ("[" + e->title + "]").c_str(), e->description.c_str());
  }
  std::printf("\n%zu experiments; run with: cdpu_bench run <name> [--preset=quick|paper]\n",
              registry.size());
  return 0;
}

struct RunFlags {
  Preset preset = Preset::kQuick;
  std::string json_path;  // single-experiment override
  std::string out_dir;
  bool write_json = true;
  bool quiet = false;
  std::vector<FleetDeviceSpec> devices;          // --devices override
  std::optional<PlacementPolicy> placement;      // --placement override
  std::string devices_arg;                       // verbatim, for run metadata
};

int RunOne(const ExperimentInfo& experiment, const RunFlags& flags) {
  obs::Reporter reporter;
  reporter.SetRun(experiment.name, experiment.title, experiment.description,
                  PresetName(flags.preset));
  reporter.Meta("generator", "cdpu_bench");
  if (!flags.devices.empty()) {
    reporter.Meta("devices", flags.devices_arg);
  }
  if (flags.placement.has_value()) {
    reporter.Meta("placement", PlacementPolicyName(*flags.placement));
  }

  ExperimentContext ctx(flags.preset, &reporter);
  ctx.SetDevices(flags.devices);
  if (flags.placement.has_value()) {
    ctx.SetPlacement(*flags.placement);
  }
  auto start = std::chrono::steady_clock::now();
  experiment.fn(ctx);
  double wall_seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
                            .count();
  reporter.Meta("wall_seconds", wall_seconds);

  if (!flags.quiet) {
    reporter.PrintHuman(stdout);
  }
  if (!flags.write_json) {
    return 0;
  }
  std::string path = flags.json_path;
  if (path.empty()) {
    path = "BENCH_" + experiment.name + ".json";
    if (!flags.out_dir.empty()) {
      path = flags.out_dir + "/" + path;
    }
  }
  Status s = reporter.WriteJsonFile(path);
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", experiment.name.c_str(), s.ToString().c_str());
    return 1;
  }
  std::fprintf(flags.quiet ? stdout : stderr, "%s: wrote %s (%.1fs)\n",
               experiment.name.c_str(), path.c_str(), wall_seconds);
  return 0;
}

int RunCommand(const std::string& prog, const std::vector<std::string>& args) {
  RunFlags flags;
  bool run_all = false;
  std::vector<std::string> names;
  for (const std::string& arg : args) {
    if (arg == "--all") {
      run_all = true;
    } else if (arg.rfind("--preset=", 0) == 0) {
      if (!ParsePreset(arg.substr(9), &flags.preset)) {
        std::fprintf(stderr, "unknown preset \"%s\" (quick|paper)\n", arg.substr(9).c_str());
        return 2;
      }
    } else if (arg.rfind("--json=", 0) == 0) {
      flags.json_path = arg.substr(7);
    } else if (arg.rfind("--out-dir=", 0) == 0) {
      flags.out_dir = arg.substr(10);
    } else if (arg == "--no-json") {
      flags.write_json = false;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (arg.rfind("--devices=", 0) == 0) {
      flags.devices_arg = arg.substr(10);
      Status s = ParseDeviceList(flags.devices_arg, &flags.devices);
      if (!s.ok()) {
        std::fprintf(stderr, "%s\n", s.ToString().c_str());
        return 2;
      }
    } else if (arg.rfind("--placement=", 0) == 0) {
      PlacementPolicy policy;
      if (!ParsePlacementPolicy(arg.substr(12), &policy)) {
        std::fprintf(stderr,
                     "unknown placement policy: %s "
                     "(static|size-threshold|least-outstanding|ewma-service-rate)\n",
                     arg.substr(12).c_str());
        return 2;
      }
      flags.placement = policy;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(prog);
    } else {
      names.push_back(arg);
    }
  }
  if (!run_all && names.empty()) {
    return Usage(prog);
  }
  if (run_all && !names.empty()) {
    std::fprintf(stderr, "--all cannot be combined with experiment names\n");
    return 2;
  }
  std::vector<const ExperimentInfo*> selected;
  if (run_all) {
    selected = ExperimentRegistry::Global().All();
  } else {
    if (!flags.json_path.empty() && names.size() > 1) {
      std::fprintf(stderr, "--json only applies to a single experiment; use --out-dir\n");
      return 2;
    }
    for (const std::string& name : names) {
      Result<const ExperimentInfo*> e = ExperimentRegistry::Global().Find(name);
      if (!e.ok()) {
        std::fprintf(stderr, "%s\n", e.status().ToString().c_str());
        return 2;
      }
      selected.push_back(*e);
    }
  }
  int rc = 0;
  for (const ExperimentInfo* e : selected) {
    rc = std::max(rc, RunOne(*e, flags));
  }
  return rc;
}

Status CheckStringField(const obs::Json& doc, const char* key) {
  const obs::Json* v = doc.Find(key);
  if (v == nullptr || !v->is_string() || v->AsString().empty()) {
    return Status::CorruptData(std::string("missing or empty \"") + key + "\"");
  }
  return Status::Ok();
}

int ValidateCommand(const std::string& prog, const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage(prog);
  }
  // Anything flag-shaped is a mistake, not a file name: `validate --quiet
  // x.json` used to fail with a misleading "cannot open --quiet".
  for (const std::string& arg : args) {
    if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(prog);
    }
  }
  int rc = 0;
  for (const std::string& path : args) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      std::fprintf(stderr, "%s: cannot open\n", path.c_str());
      rc = 1;
      continue;
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::Json> doc = obs::Json::Parse(text.str());
    Status s = doc.ok() ? ValidateBenchDocument(*doc) : doc.status();
    if (!s.ok()) {
      std::fprintf(stderr, "%s: INVALID: %s\n", path.c_str(), s.ToString().c_str());
      rc = 1;
      continue;
    }
    std::printf("%s: ok (%s, %zu tables)\n", path.c_str(),
                doc->Find("experiment")->AsString().c_str(), doc->Find("tables")->size());
  }
  return rc;
}

}  // namespace

Status ValidateBenchDocument(const obs::Json& doc) {
  if (!doc.is_object()) {
    return Status::CorruptData("document is not a JSON object");
  }
  const obs::Json* version = doc.Find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return Status::CorruptData("missing numeric \"schema_version\"");
  }
  if (version->AsInt() != obs::kSchemaVersion) {
    return Status::CorruptData("unsupported schema_version " +
                               std::to_string(version->AsInt()));
  }
  CDPU_RETURN_IF_ERROR(CheckStringField(doc, "experiment"));
  CDPU_RETURN_IF_ERROR(CheckStringField(doc, "title"));
  CDPU_RETURN_IF_ERROR(CheckStringField(doc, "description"));
  CDPU_RETURN_IF_ERROR(CheckStringField(doc, "preset"));
  const obs::Json* tables = doc.Find("tables");
  if (tables == nullptr || !tables->is_array()) {
    return Status::CorruptData("missing \"tables\" array");
  }
  if (tables->size() == 0) {
    return Status::CorruptData("experiment emitted no tables");
  }
  for (const obs::Json& table : tables->items()) {
    if (!table.is_object()) {
      return Status::CorruptData("table entry is not an object");
    }
    CDPU_RETURN_IF_ERROR(CheckStringField(table, "name"));
    const obs::Json* columns = table.Find("columns");
    const obs::Json* rows = table.Find("rows");
    if (columns == nullptr || !columns->is_array() || columns->size() == 0) {
      return Status::CorruptData("table \"" + table.Find("name")->AsString() +
                                 "\" has no columns");
    }
    if (rows == nullptr || !rows->is_array()) {
      return Status::CorruptData("table \"" + table.Find("name")->AsString() +
                                 "\" has no rows array");
    }
    for (const obs::Json& row : rows->items()) {
      if (!row.is_object() || row.size() != columns->size()) {
        return Status::CorruptData("table \"" + table.Find("name")->AsString() +
                                   "\" row does not match its columns");
      }
      for (const obs::Json& col : columns->items()) {
        if (row.Find(col.AsString()) == nullptr) {
          return Status::CorruptData("table \"" + table.Find("name")->AsString() +
                                     "\" row missing column \"" + col.AsString() + "\"");
        }
      }
    }
  }
  return Status::Ok();
}

int BenchMain(const std::string& prog, const std::vector<std::string>& args) {
  if (args.empty()) {
    return Usage(prog);
  }
  const std::string& cmd = args[0];
  std::vector<std::string> rest(args.begin() + 1, args.end());
  if (cmd == "list") {
    return ListExperiments(prog, rest);
  }
  if (cmd == "run") {
    return RunCommand(prog, rest);
  }
  if (cmd == "validate") {
    return ValidateCommand(prog, rest);
  }
  std::fprintf(stderr, "unknown command: %s\n", cmd.c_str());
  return Usage(prog);
}

}  // namespace bench
}  // namespace cdpu
