// Shared scenario builders for the experiment suite: the device cases,
// compression-scheme sets, YCSB/LSM setups and offload-runtime client
// sweeps that used to be copy-pasted across the figure binaries.

#ifndef BENCH_HARNESS_SCENARIO_H_
#define BENCH_HARNESS_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "src/hw/device_configs.h"
#include "src/kv/ycsb_runner.h"
#include "src/runtime/offload_runtime.h"
#include "src/ssd/scheme.h"

namespace cdpu {
namespace bench {

// One device under test in the microbenchmark figures (8/9/18): row label,
// timing model, closed-loop client threads, and the modelled host CPU share
// the power figures charge for the run (software burns all threads, QAT
// burns polling cores, DPZip nearly none — paper Finding 12).
struct DeviceCase {
  std::string name;
  CdpuConfig config;
  uint32_t threads = 1;
  double cpu_util = 0.0;
  bool software = false;
};

// cpu-deflate, cpu-zstd, cpu-snappy, qat-8970, qat-4xxx, dpzip.
const std::vector<DeviceCase>& MicrobenchDeviceCases();

// Subset of MicrobenchDeviceCases: cpu-deflate plus the hardware CDPUs —
// the set Figures 9 and 18 sweep.
std::vector<DeviceCase> HardwareComparisonCases();

// The five/six end-to-end compression schemes of the system-level figures.
const std::vector<CompressionScheme>& AllSchemes();      // incl. CSD 2000
const std::vector<CompressionScheme>& PrimarySchemes();  // excl. CSD 2000

// A loaded YCSB-over-LSM scenario ready to run (Figures 14/15/19). Owns the
// SSD, database and workload; `clock` is the simulated time after load.
struct YcsbScenario {
  std::unique_ptr<SimSsd> ssd;
  std::unique_ptr<LsmDb> db;
  std::unique_ptr<YcsbWorkload> workload;
  SimNanos clock = 0;
};

struct YcsbScenarioParams {
  char workload = 'A';
  uint64_t record_count = 1500;
  uint32_t value_size = 400;
  uint64_t seed = 7;
  uint64_t memtable_bytes = 128 * 1024;
  uint64_t sstable_data_bytes = 0;  // 0 = LsmConfig default
  uint64_t level1_bytes = 0;        // 0 = LsmConfig default
  uint64_t ssd_logical_pages = 512 * 1024;
};

Result<std::unique_ptr<YcsbScenario>> MakeYcsbScenario(CompressionScheme scheme,
                                                       const YcsbScenarioParams& params);

// Drives `threads` closed-loop clients through an OffloadRuntime against one
// modelled device: each client's next simulated arrival is its previous
// request's completion (the Figure 14b thread-scaling shape).
struct RuntimeSweepParams {
  CdpuConfig device;
  uint32_t threads = 1;
  uint64_t jobs_per_thread = 1;
  uint64_t bytes = 4096;
  double ratio = 0.45;
  uint32_t queue_pairs = 0;  // 0 = min(threads, 8)
};

RuntimeStats RunRuntimeClosedLoop(const RuntimeSweepParams& params);

}  // namespace bench
}  // namespace cdpu

#endif  // BENCH_HARNESS_SCENARIO_H_
