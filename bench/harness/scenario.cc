#include "bench/harness/scenario.h"

#include <algorithm>
#include <thread>

namespace cdpu {
namespace bench {

const std::vector<DeviceCase>& MicrobenchDeviceCases() {
  static const std::vector<DeviceCase>* cases = new std::vector<DeviceCase>{
      {"cpu-deflate", CpuSoftwareConfig("deflate"), 88, 1.0, true},
      {"cpu-zstd", CpuSoftwareConfig("zstd"), 88, 1.0, true},
      {"cpu-snappy", CpuSoftwareConfig("snappy"), 88, 1.0, true},
      {"qat-8970", Qat8970Config(), 64, 0.16, false},
      {"qat-4xxx", Qat4xxxConfig(), 64, 0.14, false},
      {"dpzip", DpzipCdpuConfig(), 16, 0.03, false},
  };
  return *cases;
}

std::vector<DeviceCase> HardwareComparisonCases() {
  std::vector<DeviceCase> out;
  for (const DeviceCase& c : MicrobenchDeviceCases()) {
    if (!c.software || c.name == "cpu-deflate") {
      out.push_back(c);
    }
  }
  return out;
}

const std::vector<CompressionScheme>& AllSchemes() {
  static const std::vector<CompressionScheme>* schemes = new std::vector<CompressionScheme>{
      CompressionScheme::kOff,     CompressionScheme::kCpu,
      CompressionScheme::kQat8970, CompressionScheme::kQat4xxx,
      CompressionScheme::kCsd2000, CompressionScheme::kDpCsd,
  };
  return *schemes;
}

const std::vector<CompressionScheme>& PrimarySchemes() {
  static const std::vector<CompressionScheme>* schemes = new std::vector<CompressionScheme>{
      CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat8970,
      CompressionScheme::kQat4xxx, CompressionScheme::kDpCsd,
  };
  return *schemes;
}

Result<std::unique_ptr<YcsbScenario>> MakeYcsbScenario(CompressionScheme scheme,
                                                       const YcsbScenarioParams& params) {
  auto scenario = std::make_unique<YcsbScenario>();
  scenario->ssd =
      std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, params.ssd_logical_pages));

  LsmConfig cfg;
  cfg.memtable_bytes = params.memtable_bytes;
  if (params.sstable_data_bytes != 0) {
    cfg.sstable_data_bytes = params.sstable_data_bytes;
  }
  if (params.level1_bytes != 0) {
    cfg.level1_bytes = params.level1_bytes;
  }
  scenario->db =
      std::make_unique<LsmDb>(cfg, scenario->ssd.get(), MakeSchemeBackend(scheme));

  YcsbConfig ycfg;
  ycfg.workload = params.workload;
  ycfg.record_count = params.record_count;
  ycfg.value_size = params.value_size;
  ycfg.seed = params.seed;
  scenario->workload = std::make_unique<YcsbWorkload>(ycfg);

  CDPU_RETURN_IF_ERROR(YcsbLoad(scenario->db.get(), *scenario->workload, &scenario->clock));
  return scenario;
}

RuntimeStats RunRuntimeClosedLoop(const RuntimeSweepParams& params) {
  RuntimeOptions opts;
  opts.device = params.device;
  opts.codec = "";  // model-only: timing comes from the device model
  opts.queue_pairs =
      params.queue_pairs != 0 ? params.queue_pairs : std::min(params.threads, 8u);
  opts.batch_size = 1;
  OffloadRuntime runtime(opts);

  std::vector<std::thread> clients;
  clients.reserve(params.threads);
  for (uint32_t t = 0; t < params.threads; ++t) {
    clients.emplace_back([&runtime, &opts, &params, t] {
      SimNanos now = 0;
      for (uint64_t i = 0; i < params.jobs_per_thread; ++i) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.model_bytes = params.bytes;
        req.ratio_hint = params.ratio;
        req.arrival = now;
        req.queue_pair = t % opts.queue_pairs;
        now = runtime.Submit(std::move(req)).get().sim_completion;
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();
  runtime.Shutdown();
  return runtime.Snapshot();
}

}  // namespace bench
}  // namespace cdpu
