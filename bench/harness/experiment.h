// Unified experiment harness: every figure/table reproduction registers
// itself here (static initialisation) instead of hand-rolling a main().
// The cdpu_bench driver lists, runs and validates experiments; each run
// renders human tables and writes a schema-versioned BENCH_<name>.json
// from the same structured rows.

#ifndef BENCH_HARNESS_EXPERIMENT_H_
#define BENCH_HARNESS_EXPERIMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/format.h"
#include "src/obs/report.h"
#include "src/runtime/placement.h"

namespace cdpu {
namespace bench {

// Workload scale. kQuick is sized for CI smoke runs (the whole suite in a
// few seconds); kPaper reproduces the figures at the fidelity documented in
// EXPERIMENTS.md.
enum class Preset : uint8_t { kQuick, kPaper };

const char* PresetName(Preset preset);
bool ParsePreset(const std::string& name, Preset* out);

class ExperimentContext {
 public:
  ExperimentContext(Preset preset, obs::Reporter* reporter)
      : preset_(preset), reporter_(reporter) {}

  Preset preset() const { return preset_; }
  bool quick() const { return preset_ == Preset::kQuick; }

  // Picks the workload size for the active preset.
  uint64_t Pick(uint64_t quick_value, uint64_t paper_value) const {
    return quick() ? quick_value : paper_value;
  }

  obs::Reporter& reporter() { return *reporter_; }
  obs::MetricSet& metrics() { return reporter_->metrics(); }

  obs::Table& AddTable(std::string name, std::string title,
                       std::vector<obs::Column> columns) {
    return reporter_->AddTable(std::move(name), std::move(title), std::move(columns));
  }
  void Note(std::string note) { reporter_->Note(std::move(note)); }

  // Driver overrides from `run --devices=...` / `--placement=...`. Empty /
  // nullopt when the flags were not given; fleet-driving experiments
  // (placement_sweep) use them to swap the device mix or pin one policy.
  const std::vector<FleetDeviceSpec>& devices() const { return devices_; }
  const std::optional<PlacementPolicy>& placement() const { return placement_; }
  void SetDevices(std::vector<FleetDeviceSpec> devices) { devices_ = std::move(devices); }
  void SetPlacement(PlacementPolicy policy) { placement_ = policy; }

 private:
  Preset preset_;
  obs::Reporter* reporter_;
  std::vector<FleetDeviceSpec> devices_;
  std::optional<PlacementPolicy> placement_;
};

using ExperimentFn = void (*)(ExperimentContext&);

struct ExperimentInfo {
  std::string name;         // registry key, e.g. "fig08"
  std::string title;        // paper artefact, e.g. "Figure 8"
  std::string description;  // one-line summary
  ExperimentFn fn = nullptr;
};

class ExperimentRegistry {
 public:
  // The process-wide registry populated by static registrars.
  static ExperimentRegistry& Global();

  // Rejects duplicate names and empty/missing fields.
  Status Register(ExperimentInfo info);

  // Unknown names yield an error naming the nearest candidates.
  Result<const ExperimentInfo*> Find(const std::string& name) const;

  // All experiments sorted by name.
  std::vector<const ExperimentInfo*> All() const;

  size_t size() const { return experiments_.size(); }

 private:
  std::vector<ExperimentInfo> experiments_;
};

// Static registrar used by CDPU_REGISTER_EXPERIMENT; aborts on duplicate
// registration (a build-time authoring error, not a runtime condition).
struct ExperimentRegistrar {
  ExperimentRegistrar(const char* name, const char* title, const char* description,
                      ExperimentFn fn);
};

#define CDPU_REGISTER_EXPERIMENT(name, title, description, fn)                       \
  static const ::cdpu::bench::ExperimentRegistrar kCdpuExperimentRegistrar{name, title, \
                                                                           description, fn}

}  // namespace bench
}  // namespace cdpu

#endif  // BENCH_HARNESS_EXPERIMENT_H_
