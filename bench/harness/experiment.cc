#include "bench/harness/experiment.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace cdpu {
namespace bench {

const char* PresetName(Preset preset) {
  switch (preset) {
    case Preset::kQuick:
      return "quick";
    case Preset::kPaper:
      return "paper";
  }
  return "unknown";
}

bool ParsePreset(const std::string& name, Preset* out) {
  if (name == "quick") {
    *out = Preset::kQuick;
    return true;
  }
  if (name == "paper") {
    *out = Preset::kPaper;
    return true;
  }
  return false;
}

ExperimentRegistry& ExperimentRegistry::Global() {
  static ExperimentRegistry* registry = new ExperimentRegistry();
  return *registry;
}

Status ExperimentRegistry::Register(ExperimentInfo info) {
  if (info.name.empty() || info.fn == nullptr) {
    return Status::InvalidArgument("experiment needs a name and a function");
  }
  for (const ExperimentInfo& e : experiments_) {
    if (e.name == info.name) {
      return Status::InvalidArgument("duplicate experiment name \"" + info.name + "\"");
    }
  }
  experiments_.push_back(std::move(info));
  return Status::Ok();
}

namespace {

// Levenshtein distance, used for did-you-mean hints on unknown names.
size_t EditDistance(const std::string& a, const std::string& b) {
  std::vector<size_t> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) {
    row[j] = j;
  }
  for (size_t i = 1; i <= a.size(); ++i) {
    size_t diag = row[0];
    row[0] = i;
    for (size_t j = 1; j <= b.size(); ++j) {
      size_t next_diag = row[j];
      size_t subst = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, subst});
      diag = next_diag;
    }
  }
  return row[b.size()];
}

}  // namespace

Result<const ExperimentInfo*> ExperimentRegistry::Find(const std::string& name) const {
  for (const ExperimentInfo& e : experiments_) {
    if (e.name == name) {
      return &e;
    }
  }
  size_t best = 3;  // suggest only names within edit distance 2
  for (const ExperimentInfo& e : experiments_) {
    best = std::min(best, EditDistance(e.name, name));
  }
  std::string hint;
  for (const ExperimentInfo& e : experiments_) {
    bool prefix = e.name.rfind(name, 0) == 0 || name.rfind(e.name, 0) == 0;
    if (prefix || (best <= 2 && EditDistance(e.name, name) == best)) {
      hint += hint.empty() ? " (did you mean " : ", ";
      hint += e.name;
    }
  }
  if (!hint.empty()) {
    hint += "?)";
  }
  return Status::InvalidArgument("unknown experiment \"" + name + "\"" + hint +
                                 "; run `cdpu_bench list`");
}

std::vector<const ExperimentInfo*> ExperimentRegistry::All() const {
  std::vector<const ExperimentInfo*> out;
  out.reserve(experiments_.size());
  for (const ExperimentInfo& e : experiments_) {
    out.push_back(&e);
  }
  std::sort(out.begin(), out.end(),
            [](const ExperimentInfo* a, const ExperimentInfo* b) { return a->name < b->name; });
  return out;
}

ExperimentRegistrar::ExperimentRegistrar(const char* name, const char* title,
                                         const char* description, ExperimentFn fn) {
  Status s = ExperimentRegistry::Global().Register({name, title, description, fn});
  if (!s.ok()) {
    std::fprintf(stderr, "experiment registration failed: %s\n", s.ToString().c_str());
    std::abort();
  }
}

}  // namespace bench
}  // namespace cdpu
