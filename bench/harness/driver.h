// Command-line driver for the experiment harness, shared between the
// cdpu_bench binary and cdpu_cli's `bench` passthrough.
//
//   cdpu_bench list
//   cdpu_bench run <name>... [--preset=quick|paper] [--json=PATH]
//                            [--out-dir=DIR] [--no-json] [--quiet]
//                            [--devices=NAME[:COUNT],...] [--placement=POLICY]
//   cdpu_bench run --all [same flags]
//   cdpu_bench validate <file.json>...
//
// Flag parsing is strict across every subcommand: unknown or flag-shaped
// arguments print usage and exit 2 (same contract as cdpu_cli).
// --devices/--placement are validated up front and handed to experiments
// through ExperimentContext; fleet-driving experiments (placement_sweep)
// honour them, the rest ignore them.
//
// Every run writes BENCH_<name>.json (schema obs::kSchemaVersion) next to
// the working directory unless --out-dir/--json redirect it or --no-json
// suppresses it. `validate` re-parses emitted files and checks the schema,
// which is what the CI bench-smoke job gates on.

#ifndef BENCH_HARNESS_DRIVER_H_
#define BENCH_HARNESS_DRIVER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace cdpu {
namespace bench {

// argv[0] is the first word after the program name (e.g. "list"). `prog` is
// used in usage/error text. Returns a process exit code.
int BenchMain(const std::string& prog, const std::vector<std::string>& args);

// Schema check used by `validate` and the smoke tests: schema_version,
// required header fields, and structurally sound tables (every row holds
// exactly the declared columns).
Status ValidateBenchDocument(const obs::Json& doc);

}  // namespace bench
}  // namespace cdpu

#endif  // BENCH_HARNESS_DRIVER_H_
