// Command-line driver for the experiment harness, shared between the
// cdpu_bench binary and cdpu_cli's `bench` passthrough.
//
//   cdpu_bench list
//   cdpu_bench run <name>... [--preset=quick|paper] [--json=PATH]
//                            [--out-dir=DIR] [--no-json] [--quiet]
//   cdpu_bench run --all [same flags]
//   cdpu_bench validate <file.json>...
//
// Every run writes BENCH_<name>.json (schema obs::kSchemaVersion) next to
// the working directory unless --out-dir/--json redirect it or --no-json
// suppresses it. `validate` re-parses emitted files and checks the schema,
// which is what the CI bench-smoke job gates on.

#ifndef BENCH_HARNESS_DRIVER_H_
#define BENCH_HARNESS_DRIVER_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace cdpu {
namespace bench {

// argv[0] is the first word after the program name (e.g. "list"). `prog` is
// used in usage/error text. Returns a process exit code.
int BenchMain(const std::string& prog, const std::vector<std::string>& args);

// Schema check used by `validate` and the smoke tests: schema_version,
// required header fields, and structurally sound tables (every row holds
// exactly the declared columns).
Status ValidateBenchDocument(const obs::Json& doc);

}  // namespace bench
}  // namespace cdpu

#endif  // BENCH_HARNESS_DRIVER_H_
