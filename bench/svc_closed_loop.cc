// svc_closed_loop: the compression service measured end to end — an
// in-process ServiceServer (epoll front end over the offload runtime) driven
// by the closed-loop TCP load generator, sweeping client count x payload
// size x codec. Reports offered throughput and client-observed p50/p99/p999
// per configuration, plus per-tenant throughput and tail latency for the
// largest sweep point, the service-layer analogue of Figure 20's
// multi-tenant fairness story.

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench/harness/experiment.h"
#include "src/hw/device_configs.h"
#include "src/svc/loadgen.h"
#include "src/svc/server.h"
#include "src/svc/stats_export.h"
#include "src/trace/breakdown.h"
#include "src/trace/trace.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct SweepPoint {
  uint32_t clients;
  size_t payload_bytes;
  std::string codec;
};

std::string PayloadLabel(size_t bytes) {
  if (bytes >= 1024 * 1024 && bytes % (1024 * 1024) == 0) {
    return std::to_string(bytes / (1024 * 1024)) + "M";
  }
  if (bytes >= 1024 && bytes % 1024 == 0) {
    return std::to_string(bytes / 1024) + "K";
  }
  return std::to_string(bytes) + "B";
}

void Run(ExperimentContext& ctx) {
  svc::ServerOptions sopts;
  sopts.runtime.device = Qat8970Config();
  sopts.admission.arbitration = VfArbitration::kWeightedFair;
  sopts.admission.expected_tenants = 2;
  // CDPU_SVC_TRACE=1 runs the whole sweep with full-rate tracing wired into
  // the server — the configuration the tracing-overhead acceptance check
  // compares against the default untraced run. Off by default so the
  // perf-gate baselines measure the production configuration.
  std::unique_ptr<trace::TraceSink> sink;
  const char* trace_env = std::getenv("CDPU_SVC_TRACE");
  if (trace_env != nullptr && trace_env[0] == '1') {
    trace::TraceSinkOptions topts;
    topts.sample_rate = 1.0;
    sink = std::make_unique<trace::TraceSink>(topts);
    sopts.trace_sink = sink.get();
  }
  svc::ServiceServer server(sopts);
  Status started = server.Start();
  if (!started.ok()) {
    ctx.Note("service failed to start: " + started.ToString());
    return;
  }

  const std::vector<uint32_t> clients =
      ctx.quick() ? std::vector<uint32_t>{1, 4} : std::vector<uint32_t>{1, 4, 16};
  const std::vector<size_t> payloads =
      ctx.quick() ? std::vector<size_t>{4096, 65536}
                  : std::vector<size_t>{4096, 65536, 262144};
  const std::vector<std::string> codecs =
      ctx.quick() ? std::vector<std::string>{"zstd-1", "lz4"}
                  : std::vector<std::string>{"zstd-1", "lz4", "snappy"};
  const uint64_t requests_per_client = ctx.Pick(8, 64);
  // Warm-up brings the pool/job/context freelists to steady state before the
  // measured window — allocs_per_request then reports the floor the
  // bench-smoke alloc gate holds, not first-touch slab growth.
  const uint64_t warmup_per_client = ctx.Pick(8, 16);

  obs::Table& table = ctx.AddTable(
      "closed_loop",
      "Closed-loop service sweep (compress + verify round trips over TCP)",
      {Column("clients", "clients", 0), Column("payload", "payload"),
       Column("codec", "codec"), Column("mbps", "MB/s", 1),
       Column("p50_us", "p50 us", 1), Column("p99_us", "p99 us", 1),
       Column("p999_us", "p999 us", 1), Column("busy", "BUSY", 0),
       Column("allocs_req", "allocs/req", 3)});

  svc::LoadGenReport largest;  // the last sweep point exercises the most load
  for (uint32_t c : clients) {
    for (size_t payload : payloads) {
      for (const std::string& codec : codecs) {
        svc::LoadGenOptions lopts;
        lopts.port = server.port();
        lopts.clients = c;
        lopts.tenants = 2;
        lopts.requests_per_client = requests_per_client;
        lopts.warmup_requests_per_client = warmup_per_client;
        lopts.payload_bytes = payload;
        lopts.codec = codec;
        Result<svc::LoadGenReport> run = RunClosedLoop(lopts);
        if (!run.ok()) {
          ctx.Note("sweep point failed: " + run.status().ToString());
          continue;
        }
        svc::LoadGenReport report = std::move(run).value();
        // p999 comes from the always-on histogram (bucketed, ≤1.6% relative
        // error, never subsampled) rather than the sample vector — the tail
        // is exactly what a sparse sample set distorts first.
        const double p999_us = report.latency_hist.count() > 0
                                   ? report.latency_hist.Percentile(99.9) / 1e3
                                   : report.latency_us.Percentile(99.9);
        table.AddRow({static_cast<double>(c), PayloadLabel(payload), codec,
                      report.throughput_mbps(), report.latency_us.Percentile(50),
                      report.latency_us.Percentile(99), p999_us,
                      static_cast<double>(report.busy_rejections),
                      report.allocs_per_request()});

        const std::string key = "c" + std::to_string(c) + ".p" + PayloadLabel(payload) +
                                "." + codec + ".";
        ctx.metrics().Gauge(key + "mbps", report.throughput_mbps());
        ctx.metrics().Gauge(key + "allocs_per_request", report.allocs_per_request());
        ctx.metrics().Gauge(key + "copies_per_request", report.copies_per_request());
        ctx.metrics().Count(key + "ok", report.requests_ok);
        ctx.metrics().Count(key + "failed", report.requests_failed);
        ctx.metrics().Count(key + "busy", report.busy_rejections);
        ctx.metrics().Summary(key + "latency_us",
                              obs::SummarizeSampleSet(&report.latency_us));
        ctx.metrics().Gauge(key + "p999_us", p999_us);
        // Informational: how much of the histogram's bucket space this sweep
        // point actually touched. A sanity check on the log-linear geometry
        // (a collapsed distribution occupies a handful of buckets), not a
        // perf-gated number.
        ctx.metrics().Gauge(key + "hist_buckets",
                            static_cast<double>(report.latency_hist.nonzero_buckets()));
        largest = std::move(report);
      }
    }
  }

  obs::Table& tenant_tbl = ctx.AddTable(
      "per_tenant", "Per-tenant split of the largest sweep point",
      {Column("tenant", "tenant", 0), Column("ok", "round trips", 0),
       Column("mbps", "MB/s", 1), Column("p99_us", "p99 us", 1)});
  for (svc::TenantLoadStats& t : largest.tenants) {
    const double mbps = largest.wall_seconds > 0
                            ? static_cast<double>(t.bytes_in) / 1e6 / largest.wall_seconds
                            : 0;
    const double p99 = t.latency_us.empty() ? 0 : t.latency_us.Percentile(99);
    tenant_tbl.AddRow({static_cast<double>(t.tenant), static_cast<double>(t.ok), mbps, p99});
    const std::string tp = "tenant" + std::to_string(t.tenant) + ".";
    ctx.metrics().Gauge(tp + "mbps", mbps);
    ctx.metrics().Gauge(tp + "p99_us", p99);
    ctx.metrics().Count(tp + "ok", t.ok);
  }

  server.Stop();
  ExportServiceStats(server.Snapshot(), "svc.", &ctx.metrics());
  if (sink != nullptr) {
    sink->Stop();
    std::vector<trace::SpanRecord> spans = sink->Snapshot();
    trace::Breakdown breakdown = trace::BuildBreakdown(spans, sink.get());
    trace::ExportBreakdown(breakdown, sink->counters(), "trace.", &ctx.reporter());
  }
  ctx.Note("Every compress is verified by a decompress + byte compare; BUSY counts\n"
           "admission backpressure absorbed by client retries, not failures.");
}

CDPU_REGISTER_EXPERIMENT("svc_closed_loop", "Service closed loop",
                         "Network compression service: clients x payload x codec sweep",
                         Run);

}  // namespace
}  // namespace cdpu
