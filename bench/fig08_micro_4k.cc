// Figure 8: 4 KB-granularity microbenchmark — compression/decompression
// throughput (a) and request latency (b) for CPU software, QAT 8970,
// QAT 4xxx, DPZip, plus lightweight software codecs and the 3x DP-CSD
// aggregate the paper reports.

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

using bench::DeviceCase;
using bench::ExperimentContext;
using obs::Column;

constexpr uint64_t kBytes = 4096;
constexpr double kRatio = 0.45;  // Silesia-like 4 KB pages

void Run(ExperimentContext& ctx) {
  const uint64_t requests = ctx.Pick(2000, 20000);

  obs::Table& tput = ctx.AddTable(
      "throughput",
      "(a) Throughput (GB/s); paper: CPU 4.9/13.6, 8970 5.1/7.6, "
      "4xxx 4.3/7.0, DPZip 5.6/9.4, snappy 22.8/20.3",
      {Column("scheme"), Column("c_gbps", "C GB/s"), Column("d_gbps", "D GB/s"),
       Column("threads", "", 0), Column("engine_util", "engine util", 0, "%")});
  for (const DeviceCase& dev : bench::MicrobenchDeviceCases()) {
    CdpuDevice device(dev.config);
    ClosedLoopResult c =
        device.RunClosedLoop(CdpuOp::kCompress, requests, kBytes, kRatio, dev.threads);
    ClosedLoopResult d =
        device.RunClosedLoop(CdpuOp::kDecompress, requests, kBytes, kRatio, dev.threads);
    tput.AddRow({dev.name, c.gbps, d.gbps, dev.threads, c.engine_utilization * 100});
  }
  {
    ClosedLoopResult c = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kCompress, requests,
                                        kBytes, kRatio, 48);
    ClosedLoopResult d = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kDecompress, requests,
                                        kBytes, kRatio, 48);
    tput.AddRow({"3x dp-csd", c.gbps, d.gbps, 48u, obs::Json()});
  }

  obs::Table& lat = ctx.AddTable(
      "latency",
      "(b) Request latency (us); paper: CPU 70/~20, 8970 28/14, "
      "4xxx 9/6, DPZip 4.7/2.6, zstd 20.4/7.4, snappy 8.9/3.8",
      {Column("scheme"), Column("c_us", "C us", 1), Column("d_us", "D us", 1)});
  for (const DeviceCase& dev : bench::MicrobenchDeviceCases()) {
    CdpuDevice device(dev.config);
    lat.AddRow(
        {dev.name,
         static_cast<double>(device.RequestLatency(CdpuOp::kCompress, kBytes, kRatio)) / 1e3,
         static_cast<double>(device.RequestLatency(CdpuOp::kDecompress, kBytes, kRatio)) /
             1e3});
  }
}

CDPU_REGISTER_EXPERIMENT("fig08", "Figure 8", "4 KB microbenchmark: throughput and latency",
                         Run);

}  // namespace
}  // namespace cdpu
