// Figure 8: 4 KB-granularity microbenchmark — compression/decompression
// throughput (a) and request latency (b) for CPU software, QAT 8970,
// QAT 4xxx, DPZip, plus lightweight software codecs and the 3x DP-CSD
// aggregate the paper reports.

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

constexpr uint64_t kBytes = 4096;
constexpr double kRatio = 0.45;  // Silesia-like 4 KB pages
constexpr uint64_t kRequests = 20000;

void Throughput(const std::string& name, const CdpuConfig& cfg, uint32_t threads) {
  CdpuDevice dev(cfg);
  ClosedLoopResult c = dev.RunClosedLoop(CdpuOp::kCompress, kRequests, kBytes, kRatio, threads);
  ClosedLoopResult d =
      dev.RunClosedLoop(CdpuOp::kDecompress, kRequests, kBytes, kRatio, threads);
  PrintRow({name, Fmt(c.gbps, 2), Fmt(d.gbps, 2), Fmt(threads, 0),
            Fmt(c.engine_utilization * 100, 0) + "%"});
}

void Latency(const std::string& name, const CdpuConfig& cfg) {
  CdpuDevice dev(cfg);
  PrintRow({name,
            Fmt(static_cast<double>(dev.RequestLatency(CdpuOp::kCompress, kBytes, kRatio)) / 1e3,
                1),
            Fmt(static_cast<double>(dev.RequestLatency(CdpuOp::kDecompress, kBytes, kRatio)) /
                    1e3,
                1)});
}

void Run() {
  PrintHeader("Figure 8", "4 KB microbenchmark: throughput and latency");

  std::printf("\n(a) Throughput (GB/s); paper: CPU 4.9/13.6, 8970 5.1/7.6, "
              "4xxx 4.3/7.0, DPZip 5.6/9.4, snappy 22.8/20.3\n");
  PrintRow({"scheme", "C GB/s", "D GB/s", "threads", "engine util"});
  PrintRule(5);
  Throughput("cpu-deflate", CpuSoftwareConfig("deflate"), 88);
  Throughput("cpu-zstd", CpuSoftwareConfig("zstd"), 88);
  Throughput("cpu-snappy", CpuSoftwareConfig("snappy"), 88);
  Throughput("qat-8970", Qat8970Config(), 64);
  Throughput("qat-4xxx", Qat4xxxConfig(), 64);
  Throughput("dpzip", DpzipCdpuConfig(), 16);
  {
    ClosedLoopResult c = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kCompress, kRequests,
                                        kBytes, kRatio, 48);
    ClosedLoopResult d = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kDecompress, kRequests,
                                        kBytes, kRatio, 48);
    PrintRow({"3x dp-csd", Fmt(c.gbps, 2), Fmt(d.gbps, 2), "48", "-"});
  }

  std::printf("\n(b) Request latency (us); paper: CPU 70/~20, 8970 28/14, "
              "4xxx 9/6, DPZip 4.7/2.6, zstd 20.4/7.4, snappy 8.9/3.8\n");
  PrintRow({"scheme", "C us", "D us"});
  PrintRule(3);
  Latency("cpu-deflate", CpuSoftwareConfig("deflate"));
  Latency("cpu-zstd", CpuSoftwareConfig("zstd"));
  Latency("cpu-snappy", CpuSoftwareConfig("snappy"));
  Latency("qat-8970", Qat8970Config());
  Latency("qat-4xxx", Qat4xxxConfig());
  Latency("dpzip", DpzipCdpuConfig());
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
