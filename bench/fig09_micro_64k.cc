// Figure 9: 64 KB-granularity microbenchmark (the QAT hardware buffer
// size). Finding 2: larger IO lifts hardware CDPUs 74-120% (compress) and
// up to 177% (decompress); software gains ~30%. Includes the 3x DP-CSD
// aggregate (37.5 GB/s in the paper).

#include "bench/bench_util.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

constexpr uint64_t k4K = 4096;
constexpr uint64_t k64K = 65536;
constexpr double kRatio = 0.40;  // 64 KB chunks compress a little better
constexpr uint64_t kRequests = 8000;

void Row(const std::string& name, const CdpuConfig& cfg, uint32_t threads) {
  CdpuDevice dev(cfg);
  ClosedLoopResult c4 = dev.RunClosedLoop(CdpuOp::kCompress, kRequests, k4K, 0.45, threads);
  ClosedLoopResult c64 = dev.RunClosedLoop(CdpuOp::kCompress, kRequests / 4, k64K, kRatio,
                                           threads);
  ClosedLoopResult d4 = dev.RunClosedLoop(CdpuOp::kDecompress, kRequests, k4K, 0.45, threads);
  ClosedLoopResult d64 = dev.RunClosedLoop(CdpuOp::kDecompress, kRequests / 4, k64K, kRatio,
                                           threads);
  double c_gain = c4.gbps > 0 ? (c64.gbps / c4.gbps - 1.0) * 100 : 0;
  double d_gain = d4.gbps > 0 ? (d64.gbps / d4.gbps - 1.0) * 100 : 0;
  PrintRow({name, Fmt(c64.gbps, 2), Fmt(d64.gbps, 2), "+" + Fmt(c_gain, 0) + "%",
            "+" + Fmt(d_gain, 0) + "%"});
}

void Run() {
  PrintHeader("Figure 9", "64 KB microbenchmark: throughput and gain over 4 KB");
  PrintRow({"scheme", "C GB/s", "D GB/s", "C gain", "D gain"});
  PrintRule(5);
  Row("cpu-deflate", CpuSoftwareConfig("deflate"), 88);
  Row("qat-8970", Qat8970Config(), 64);
  Row("qat-4xxx", Qat4xxxConfig(), 64);
  Row("dpzip", DpzipCdpuConfig(), 16);
  {
    ClosedLoopResult c = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kCompress, 6000, k64K,
                                        kRatio, 48);
    PrintRow({"3x dp-csd", Fmt(c.gbps, 2), "-", "-", "-"});
  }
  std::printf("\nPaper shape: software +30%%; hardware compression +74-120%%, "
              "decompression up to +177%%; 3x DP-CSD reaches 37.5 GB/s.\n");
}

}  // namespace
}  // namespace cdpu

int main() {
  cdpu::Run();
  return 0;
}
