// Figure 9: 64 KB-granularity microbenchmark (the QAT hardware buffer
// size). Finding 2: larger IO lifts hardware CDPUs 74-120% (compress) and
// up to 177% (decompress); software gains ~30%. Includes the 3x DP-CSD
// aggregate (37.5 GB/s in the paper).

#include "bench/harness/experiment.h"
#include "bench/harness/scenario.h"
#include "src/hw/device_configs.h"

namespace cdpu {
namespace {

using bench::DeviceCase;
using bench::ExperimentContext;
using obs::Column;

constexpr uint64_t k4K = 4096;
constexpr uint64_t k64K = 65536;
constexpr double kRatio = 0.40;  // 64 KB chunks compress a little better

void Run(ExperimentContext& ctx) {
  const uint64_t requests = ctx.Pick(1000, 8000);

  obs::Table& t = ctx.AddTable(
      "gain_over_4k", "",
      {Column("scheme"), Column("c_gbps", "C GB/s"), Column("d_gbps", "D GB/s"),
       Column("c_gain", "C gain", 0, "%", /*plus=*/true),
       Column("d_gain", "D gain", 0, "%", /*plus=*/true)});
  for (const DeviceCase& dev : bench::HardwareComparisonCases()) {
    CdpuDevice device(dev.config);
    ClosedLoopResult c4 =
        device.RunClosedLoop(CdpuOp::kCompress, requests, k4K, 0.45, dev.threads);
    ClosedLoopResult c64 =
        device.RunClosedLoop(CdpuOp::kCompress, requests / 4, k64K, kRatio, dev.threads);
    ClosedLoopResult d4 =
        device.RunClosedLoop(CdpuOp::kDecompress, requests, k4K, 0.45, dev.threads);
    ClosedLoopResult d64 =
        device.RunClosedLoop(CdpuOp::kDecompress, requests / 4, k64K, kRatio, dev.threads);
    double c_gain = c4.gbps > 0 ? (c64.gbps / c4.gbps - 1.0) * 100 : 0;
    double d_gain = d4.gbps > 0 ? (d64.gbps / d4.gbps - 1.0) * 100 : 0;
    t.AddRow({dev.name, c64.gbps, d64.gbps, c_gain, d_gain});
  }
  {
    ClosedLoopResult c = RunDeviceFleet(DpzipCdpuConfig(), 3, CdpuOp::kCompress,
                                        ctx.Pick(800, 6000), k64K, kRatio, 48);
    t.AddRow({"3x dp-csd", c.gbps, obs::Json(), obs::Json(), obs::Json()});
  }
  ctx.Note("Paper shape: software +30%; hardware compression +74-120%, "
           "decompression up to +177%; 3x DP-CSD reaches 37.5 GB/s.");
}

CDPU_REGISTER_EXPERIMENT("fig09", "Figure 9",
                         "64 KB microbenchmark: throughput and gain over 4 KB", Run);

}  // namespace
}  // namespace cdpu
