// Shared helpers for the figure-reproduction binaries: aligned table
// printing and the standard header that names the paper artefact being
// regenerated.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

namespace cdpu {

inline void PrintHeader(const std::string& artefact, const std::string& description) {
  std::printf("================================================================\n");
  std::printf("%s — %s\n", artefact.c_str(), description.c_str());
  std::printf("================================================================\n");
}

inline void PrintRow(const std::vector<std::string>& cells, int width = 14) {
  for (const std::string& c : cells) {
    std::printf("%-*s", width, c.c_str());
  }
  std::printf("\n");
}

inline std::string Fmt(double v, int precision = 2) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline void PrintRule(size_t columns, int width = 14) {
  std::string line(columns * static_cast<size_t>(width), '-');
  std::printf("%s\n", line.c_str());
}

}  // namespace cdpu

#endif  // BENCH_BENCH_UTIL_H_
