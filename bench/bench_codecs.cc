// Wall-clock microbenchmarks (google-benchmark) of the from-scratch software
// codecs on this machine — the "CPU software" rows of Figures 8/9 measured
// for real rather than modelled. Throughput counters report bytes of
// original data processed per second.

#include <benchmark/benchmark.h>

#include "src/codecs/codec.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

std::vector<uint8_t> BenchData(size_t size) { return GenerateTextLike(size, 42); }

void BM_Compress(benchmark::State& state, const std::string& codec_name) {
  std::unique_ptr<Codec> codec = MakeCodec(codec_name);
  size_t chunk = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> data = BenchData(chunk);
  for (auto _ : state) {
    ByteVec out;
    Result<size_t> r = codec->Compress(data, &out);
    benchmark::DoNotOptimize(out.data());
    if (!r.ok()) {
      state.SkipWithError("compress failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk));
}

void BM_Decompress(benchmark::State& state, const std::string& codec_name) {
  std::unique_ptr<Codec> codec = MakeCodec(codec_name);
  size_t chunk = static_cast<size_t>(state.range(0));
  std::vector<uint8_t> data = BenchData(chunk);
  ByteVec compressed;
  if (!codec->Compress(data, &compressed).ok()) {
    state.SkipWithError("compress failed");
    return;
  }
  for (auto _ : state) {
    ByteVec out;
    Result<size_t> r = codec->Decompress(compressed, &out);
    benchmark::DoNotOptimize(out.data());
    if (!r.ok()) {
      state.SkipWithError("decompress failed");
      return;
    }
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(chunk));
}

void RegisterAll() {
  DpzipCodec::RegisterWithFactory();
  for (const char* name : {"deflate-1", "zstd-1", "lz4", "snappy", "dpzip"}) {
    for (int64_t chunk : {4096, 65536}) {
      benchmark::RegisterBenchmark(
          (std::string("compress/") + name + "/" + std::to_string(chunk)).c_str(),
          [name](benchmark::State& s) { BM_Compress(s, name); })
          ->Arg(chunk)
          ->MinTime(0.1);
      benchmark::RegisterBenchmark(
          (std::string("decompress/") + name + "/" + std::to_string(chunk)).c_str(),
          [name](benchmark::State& s) { BM_Decompress(s, name); })
          ->Arg(chunk)
          ->MinTime(0.1);
    }
  }
}

}  // namespace
}  // namespace cdpu

int main(int argc, char** argv) {
  cdpu::RegisterAll();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
