// Wall-clock microbenchmarks of the from-scratch software codecs on this
// machine — the "CPU software" rows of Figures 8/9 measured for real rather
// than modelled. Unlike every other experiment these rows report host
// wall-clock throughput, so they vary run to run with the machine.

#include <chrono>
#include <memory>
#include <string>

#include "bench/harness/experiment.h"
#include "src/codecs/codec.h"
#include "src/core/dpzip_codec.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

struct WallResult {
  double mbps = 0;
  uint64_t iterations = 0;
};

// Runs op repeatedly until min_seconds of wall-clock has elapsed.
template <typename Op>
WallResult TimeLoop(double min_seconds, uint64_t bytes_per_iter, Op op) {
  using Clock = std::chrono::steady_clock;
  WallResult r;
  Clock::time_point start = Clock::now();
  double elapsed = 0;
  do {
    if (!op()) {
      return WallResult{};
    }
    ++r.iterations;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < min_seconds);
  r.mbps = static_cast<double>(r.iterations * bytes_per_iter) / 1e6 / elapsed;
  return r;
}

void Run(ExperimentContext& ctx) {
  const double min_seconds = ctx.quick() ? 0.02 : 0.1;
  DpzipCodec::RegisterWithFactory();

  for (size_t chunk : {4096u, 65536u}) {
    obs::Table& t = ctx.AddTable(
        "wallclock_" + std::to_string(chunk / 1024) + "k",
        "Host wall-clock, " + std::to_string(chunk / 1024) + " KB chunks (text-like data)",
        {Column("codec"), Column("c_mbps", "C MB/s", 1), Column("d_mbps", "D MB/s", 1),
         Column("ratio_pct", "ratio %", 1), Column("c_iters", "C iters", 0),
         Column("d_iters", "D iters", 0)});
    std::vector<uint8_t> data = GenerateTextLike(chunk, 42);
    for (const char* name : {"deflate-1", "zstd-1", "lz4", "snappy", "dpzip"}) {
      std::unique_ptr<Codec> codec = MakeCodec(name);
      if (!codec) {
        continue;
      }
      ByteVec compressed;
      if (!codec->Compress(data, &compressed).ok()) {
        continue;
      }
      WallResult c = TimeLoop(min_seconds, chunk, [&] {
        ByteVec out;
        return codec->Compress(data, &out).ok();
      });
      WallResult d = TimeLoop(min_seconds, chunk, [&] {
        ByteVec out;
        return codec->Decompress(compressed, &out).ok();
      });
      t.AddRow({name, c.mbps, d.mbps,
                100.0 * static_cast<double>(compressed.size()) / static_cast<double>(chunk),
                c.iterations, d.iterations});
    }
  }
  ctx.Note("Wall-clock rows measure this host, not the simulated devices:\n"
           "absolute numbers vary with the machine; ratios are deterministic.");
}

CDPU_REGISTER_EXPERIMENT("codecs_wallclock", "Codec wall-clock",
                         "Host wall-clock software codec throughput (real time)", Run);

}  // namespace
}  // namespace cdpu
