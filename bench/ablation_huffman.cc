// Ablation: the 11-bit Huffman depth ceiling and the 3-stage hardware
// canonicalisation (§3.3) — ratio cost of the cap vs unbounded codes, and
// the bounded cycle schedule (T_max = 256 + 10 + 8 = 274).

#include <algorithm>
#include <array>

#include "bench/harness/experiment.h"
#include "src/common/rng.h"
#include "src/core/dpzip_huffman.h"
#include "src/workload/datagen.h"

namespace cdpu {
namespace {

using bench::ExperimentContext;
using obs::Column;

void Run(ExperimentContext& ctx) {
  obs::Table& cap = ctx.AddTable(
      "depth_cap",
      "(a) Code-length ceiling vs coding cost (exponentially skewed symbols,\n"
      "    the worst case for bounded-depth codes; text barely exceeds 9 bits)",
      {Column("max_bits", "max bits", 0), Column("bits_per_byte", "bits/byte", 3),
       Column("vs_15bit", "vs 15-bit", 2, "%", /*plus=*/true),
       Column("decode_tbl_kb", "decode tbl KB", 0)});
  // Geometric distribution over 64 symbols: unbounded Huffman wants deep
  // codes for the tail.
  std::array<uint32_t, 256> freqs{};
  uint64_t total = 0;
  {
    double f = 1 << 30;
    for (size_t i = 0; i < 64; ++i) {
      freqs[i] = static_cast<uint32_t>(f) + 1;
      total += freqs[i];
      f /= 1.8;
    }
  }
  double baseline = 0;
  for (uint32_t max_bits : {15u, 13u, 11u, 9u, 8u}) {
    std::vector<uint8_t> lengths = DpzipBuildLengths(freqs, max_bits, nullptr);
    uint64_t bits = 0;
    for (size_t i = 0; i < 256; ++i) {
      bits += static_cast<uint64_t>(freqs[i]) * lengths[i];
    }
    double bpb = static_cast<double>(bits) / static_cast<double>(total);
    if (max_bits == 15) {
      baseline = bpb;
    }
    // Flat decode table: 2^max_bits entries x 4 B.
    double table_kb = static_cast<double>(1u << max_bits) * 4 / 1024.0;
    cap.AddRow({max_bits, bpb, (bpb / baseline - 1) * 100, table_kb});
  }

  const int trials = static_cast<int>(ctx.Pick(500, 2000));
  obs::Table& sched = ctx.AddTable(
      "schedule",
      "(b) Canonicalisation schedule over " + std::to_string(trials) +
          " random distributions",
      {Column("metric"), Column("min", "", 0), Column("mean", "", 1), Column("max", "", 0),
       Column("bound")});
  Rng rng(7);
  uint32_t min_cycles = UINT32_MAX;
  uint32_t max_cycles = 0;
  uint64_t sum_cycles = 0;
  uint32_t max_repair = 0;
  uint32_t clipped_runs = 0;
  for (int trial = 0; trial < trials; ++trial) {
    std::vector<uint32_t> f(256, 0);
    size_t present = 2 + rng.Uniform(255);
    for (size_t i = 0; i < present; ++i) {
      // Exponential-ish skew to stress deep trees.
      f[rng.Uniform(256)] = 1 + static_cast<uint32_t>(rng.Next() % (1u << rng.Uniform(28)));
    }
    CanonicalizeStats stats;
    DpzipBuildLengths(f, 11, &stats);
    min_cycles = std::min(min_cycles, stats.schedule_cycles);
    max_cycles = std::max(max_cycles, stats.schedule_cycles);
    sum_cycles += stats.schedule_cycles;
    max_repair = std::max(max_repair, stats.repair_iterations);
    clipped_runs += stats.clipped_leaves > 0 ? 1 : 0;
  }
  sched.AddRow({"schedule cycles", min_cycles,
                static_cast<double>(sum_cycles) / trials, max_cycles, "274"});
  sched.AddRow({"repair iterations", "-", "-", max_repair, "8"});
  sched.AddRow({"runs needing clip", "-",
                Fmt(100.0 * clipped_runs / trials, 1) + "%", "-", "-"});
  ctx.Note("§3.3: the 11-bit cap costs ~3% even on adversarially skewed data (and\n"
           "well under 1% on text), shrinks the flat decode table 16x, and bounds\n"
           "the schedule at 274 cycles for 1 GHz timing closure.");
}

CDPU_REGISTER_EXPERIMENT("ablation_huffman", "Ablation",
                         "DPZip dynamic Huffman: depth cap and schedule", Run);

}  // namespace
}  // namespace cdpu
