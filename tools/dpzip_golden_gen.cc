// Regenerates the committed dpzip golden vectors (tests/golden/dpzip/
// *.bin) from the fixed corpus in tests/golden/dpzip_corpus.h. Run this
// ONLY when the dpzip bitstream changes on purpose, then commit the new
// vectors together with the encoder change:
//
//   build/tools/dpzip_golden_gen tests/golden/dpzip
//
// Each vector is verified to round-trip before it is written, so the tool
// can never commit a vector the decoder rejects.

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "tests/golden/dpzip_corpus.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output-dir>  (normally tests/golden/dpzip)\n",
                 argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  int failures = 0;
  for (const cdpu::golden::GoldenCase& c : cdpu::golden::Corpus()) {
    std::vector<uint8_t> input = cdpu::golden::GenerateInput(c);
    cdpu::DpzipCodec codec = cdpu::golden::MakeCaseCodec(c);
    cdpu::ByteVec compressed;
    cdpu::Result<size_t> cr = codec.Compress(input, &compressed);
    if (!cr.ok()) {
      std::fprintf(stderr, "%s: compress failed: %s\n", c.name,
                   cr.status().ToString().c_str());
      ++failures;
      continue;
    }
    cdpu::ByteVec roundtrip;
    cdpu::Result<size_t> dr = codec.Decompress(compressed, &roundtrip);
    if (!dr.ok() || roundtrip != input) {
      std::fprintf(stderr, "%s: vector does not round-trip, refusing to write\n", c.name);
      ++failures;
      continue;
    }
    const std::string path = dir + "/" + c.name + ".bin";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::fprintf(stderr, "%s: cannot open %s\n", c.name, path.c_str());
      ++failures;
      continue;
    }
    out.write(reinterpret_cast<const char*>(compressed.data()),
              static_cast<std::streamsize>(compressed.size()));
    out.close();
    std::printf("%-20s %6zu -> %6zu bytes  %s\n", c.name, input.size(), compressed.size(),
                path.c_str());
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d vector(s) failed\n", failures);
    return 1;
  }
  return 0;
}
