#include "tools/bench_compare_lib.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace cdpu {
namespace tools {
namespace {

constexpr double kThroughputTolerance = 0.15;  // >15% drop fails
constexpr double kTailLatencyTolerance = 0.20;  // >20% inflation fails

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool Contains(const std::string& s, const std::string& needle) {
  return s.find(needle) != std::string::npos;
}

const obs::Json* FindGauges(const obs::Json& doc) {
  const obs::Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return nullptr;
  }
  const obs::Json* gauges = metrics->Find("gauges");
  if (gauges == nullptr || !gauges->is_object()) {
    return nullptr;
  }
  return gauges;
}

std::string FormatValue(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.4g", v);
  return buf;
}

std::string FormatDelta(const MetricComparison& m) {
  if (m.verdict == Verdict::kMissing || m.verdict == Verdict::kNew) {
    return "-";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%+.1f%%", m.delta_pct);
  return buf;
}

std::string GateLabel(const MetricPolicy& p) {
  char buf[64];
  switch (p.direction) {
    case MetricDirection::kHigherBetter:
      std::snprintf(buf, sizeof(buf), ">= -%.0f%%", p.tolerance * 100);
      return buf;
    case MetricDirection::kLowerBetter:
      std::snprintf(buf, sizeof(buf), "<= +%.0f%%", p.tolerance * 100);
      return buf;
    case MetricDirection::kInformational:
      return "info";
  }
  return "info";
}

}  // namespace

MetricPolicy ClassifyMetric(const std::string& name) {
  if (EndsWith(name, "mbps") || Contains(name, "gbps")) {
    return {MetricDirection::kHigherBetter, kThroughputTolerance};
  }
  if (Contains(name, "p99")) {
    // Per-phase trace percentiles are a breakdown diagnostic, not an SLO:
    // individual sub-span p99s on a quick preset swing well past any usable
    // tolerance run to run (percentiles are not additive, phases are
    // microseconds-scale). The end-to-end p99 stays gated; the phase split
    // is reported informationally.
    if (name.rfind("trace.phase.", 0) == 0) {
      return {MetricDirection::kInformational, 0};
    }
    return {MetricDirection::kLowerBetter, kTailLatencyTolerance};
  }
  return {MetricDirection::kInformational, 0};
}

const char* VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kOk:
      return "ok";
    case Verdict::kRegressed:
      return "REGRESSED";
    case Verdict::kMissing:
      return "MISSING";
    case Verdict::kNew:
      return "new";
  }
  return "?";
}

size_t CompareReport::regressions() const {
  size_t n = 0;
  for (const MetricComparison& m : metrics) {
    if (m.verdict == Verdict::kRegressed || m.verdict == Verdict::kMissing) {
      ++n;
    }
  }
  return n;
}

Result<CompareReport> CompareBenchDocs(const obs::Json& baseline,
                                       const obs::Json& candidate) {
  const obs::Json* bv = baseline.Find("schema_version");
  const obs::Json* cv = candidate.Find("schema_version");
  if (bv == nullptr || cv == nullptr || !bv->is_number() || !cv->is_number()) {
    return Status::CorruptData("bench_compare: missing schema_version");
  }
  if (bv->AsInt() != cv->AsInt()) {
    std::ostringstream msg;
    msg << "bench_compare: schema_version mismatch (baseline " << bv->AsInt()
        << ", candidate " << cv->AsInt() << "); re-baseline instead of comparing";
    return Status::InvalidArgument(msg.str());
  }
  const obs::Json* bg = FindGauges(baseline);
  const obs::Json* cg = FindGauges(candidate);
  if (bg == nullptr) {
    return Status::CorruptData("bench_compare: baseline has no metrics.gauges");
  }
  if (cg == nullptr) {
    return Status::CorruptData("bench_compare: candidate has no metrics.gauges");
  }

  CompareReport report;
  const obs::Json* exp = baseline.Find("experiment");
  if (exp != nullptr && exp->is_string()) {
    report.experiment = exp->AsString();
  }

  // The baseline defines the gated set, in its own (insertion) order.
  for (const auto& [name, value] : bg->members()) {
    if (!value.is_number()) {
      continue;
    }
    MetricComparison m;
    m.name = name;
    m.baseline = value.AsDouble();
    m.policy = ClassifyMetric(name);
    const obs::Json* cand = cg->Find(name);
    if (cand == nullptr || !cand->is_number()) {
      // A gated metric that vanished is a failure; an informational one is
      // just noted as missing without gating.
      m.verdict = Verdict::kMissing;
      if (m.policy.direction != MetricDirection::kInformational) {
        report.pass = false;
      }
      report.metrics.push_back(std::move(m));
      continue;
    }
    m.candidate = cand->AsDouble();
    if (m.baseline != 0) {
      m.delta_pct = (m.candidate - m.baseline) / std::fabs(m.baseline) * 100.0;
    }
    double rel = m.baseline != 0
                     ? (m.candidate - m.baseline) / std::fabs(m.baseline)
                     : 0.0;
    switch (m.policy.direction) {
      case MetricDirection::kHigherBetter:
        if (rel < -m.policy.tolerance) {
          m.verdict = Verdict::kRegressed;
          report.pass = false;
        }
        break;
      case MetricDirection::kLowerBetter:
        if (rel > m.policy.tolerance) {
          m.verdict = Verdict::kRegressed;
          report.pass = false;
        }
        break;
      case MetricDirection::kInformational:
        break;
    }
    report.metrics.push_back(std::move(m));
  }

  // Candidate-only metrics: informational, never gated.
  for (const auto& [name, value] : cg->members()) {
    if (!value.is_number() || bg->Find(name) != nullptr) {
      continue;
    }
    MetricComparison m;
    m.name = name;
    m.candidate = value.AsDouble();
    m.policy = ClassifyMetric(name);
    m.verdict = Verdict::kNew;
    report.metrics.push_back(std::move(m));
  }
  return report;
}

Result<CompareReport> CompareBenchFiles(const std::string& baseline_path,
                                        const std::string& candidate_path) {
  auto load = [](const std::string& path) -> Result<obs::Json> {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      return Status::Unavailable("bench_compare: cannot read " + path);
    }
    std::ostringstream text;
    text << in.rdbuf();
    Result<obs::Json> doc = obs::Json::Parse(text.str());
    if (!doc.ok()) {
      return Status::CorruptData("bench_compare: " + path + ": " +
                                 doc.status().message());
    }
    return doc;
  };
  Result<obs::Json> baseline = load(baseline_path);
  if (!baseline.ok()) {
    return baseline.status();
  }
  Result<obs::Json> candidate = load(candidate_path);
  if (!candidate.ok()) {
    return candidate.status();
  }
  return CompareBenchDocs(*baseline, *candidate);
}

std::string RenderHuman(const CompareReport& report) {
  std::ostringstream out;
  out << "perf gate: " << (report.experiment.empty() ? "?" : report.experiment)
      << " — " << (report.pass ? "PASS" : "FAIL") << " (" << report.regressions()
      << " regression(s))\n";
  size_t name_w = 6;
  for (const MetricComparison& m : report.metrics) {
    name_w = std::max(name_w, m.name.size());
  }
  char line[512];
  std::snprintf(line, sizeof(line), "%-*s  %10s  %10s  %8s  %9s  %s\n",
                static_cast<int>(name_w), "metric", "baseline", "candidate",
                "delta", "gate", "verdict");
  out << line;
  for (const MetricComparison& m : report.metrics) {
    std::snprintf(line, sizeof(line), "%-*s  %10s  %10s  %8s  %9s  %s\n",
                  static_cast<int>(name_w), m.name.c_str(),
                  m.verdict == Verdict::kNew ? "-" : FormatValue(m.baseline).c_str(),
                  m.verdict == Verdict::kMissing ? "-" : FormatValue(m.candidate).c_str(),
                  FormatDelta(m).c_str(), GateLabel(m.policy).c_str(),
                  VerdictName(m.verdict));
    out << line;
  }
  return out.str();
}

std::string RenderMarkdown(const CompareReport& report) {
  std::ostringstream out;
  out << "### Perf gate: " << (report.experiment.empty() ? "?" : report.experiment)
      << " — " << (report.pass ? "✅ pass" : "❌ FAIL") << "\n\n";
  out << "| metric | baseline | candidate | delta | gate | verdict |\n";
  out << "|---|---:|---:|---:|---|---|\n";
  for (const MetricComparison& m : report.metrics) {
    out << "| `" << m.name << "` | "
        << (m.verdict == Verdict::kNew ? "-" : FormatValue(m.baseline)) << " | "
        << (m.verdict == Verdict::kMissing ? "-" : FormatValue(m.candidate))
        << " | " << FormatDelta(m) << " | " << GateLabel(m.policy) << " | ";
    if (m.verdict == Verdict::kRegressed || m.verdict == Verdict::kMissing) {
      out << "**" << VerdictName(m.verdict) << "**";
    } else {
      out << VerdictName(m.verdict);
    }
    out << " |\n";
  }
  return out.str();
}

}  // namespace tools
}  // namespace cdpu
