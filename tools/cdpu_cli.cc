// cdpu_cli — command-line front end for the codec suite, in the spirit of
// the QATzip utility the paper benchmarks with.
//
//   cdpu_cli compress   <codec> <in> <out>     one-shot file compression
//   cdpu_cli decompress <codec> <in> <out>     inverse
//   cdpu_cli bench      <codec> <in> [chunk]   per-chunk ratio + speed
//   cdpu_cli bench      list|run|validate ...  forwards to the cdpu_bench driver
//   cdpu_cli offload    <codec> <in> [flags]   threaded offload-runtime drive
//   cdpu_cli serve      [flags]                compression service endpoint
//   cdpu_cli client     compress|decompress <codec> <in> <out> [flags]
//   cdpu_cli stats      <host> --port=N [flags] one-shot telemetry scrape
//   cdpu_cli top        <host> --port=N [flags] live service dashboard
//   cdpu_cli entropy    <in> [chunk]           Shannon entropy profile
//   cdpu_cli list                              available codecs
//
// Codecs: deflate[-N], gzip[-N], zstd[-N], lz4, snappy, dpzip.
//
// `offload` flags: --threads=N --batch=B --chunk=BYTES --qps=N
//                  --device=qat8970|qat4xxx|dpzip|csd2000
//                  --devices=name[:count],... --placement=POLICY
//                  --fault-rate=P --fault-kinds=verify,timeout,stall,reset
//                  --fault-seed=S --trace-out=PATH --trace-sample=P
// It drives every chunk of <in> through the parallel offload runtime
// (compress, then decompress + verify) with N client threads contending for
// the modelled device's descriptor slots. --fault-rate enables the seeded
// fault injector on the listed kinds (default: all four); the recovery
// policy (retry + CPU fallback) must still round-trip every chunk.
// --devices builds a heterogeneous fleet (e.g. `--devices=qat8970:2,cpu`)
// and --placement picks the routing policy:
// static|size-threshold|least-outstanding|ewma-service-rate.
//
// `serve` flags: --host=A --port=N (0 = ephemeral) --device=NAME
//                --devices=name[:count],... --placement=POLICY
//                --engines=N --max-inflight=N --greedy --tenants=N
//                --max-sessions=N --max-seconds=S --port-file=PATH
//                --fault-rate/--fault-kinds/--fault-seed (as `offload`)
//                --trace-out=PATH --trace-sample=P
//
// `--trace-out`/`--trace-sample` (bench, offload, serve) enable per-request
// tracing: on exit the live latency breakdown (per-phase queueing vs service
// time) is printed, and the raw spans are written to PATH as Chrome
// trace_event JSON (open in about:tracing / Perfetto). `--trace-sample`
// alone enables tracing without the file.
// It runs the epoll compression service over the offload runtime until
// SIGINT/SIGTERM (or --max-seconds) and prints service + per-tenant stats
// on shutdown. --port-file writes the bound port for scripted clients.
//
// `client` flags: --host=A --port=N --tenant=T --retries=N
// One compress/decompress round trip over a real TCP socket; the output
// file carries the server's response payload.
//
// `stats` sends one in-band kStatsRequest to a running server and prints the
// JSON snapshot; --prom re-renders the metrics section as Prometheus text
// exposition (v0.0.4) for scrapers. `top` refreshes the same scrape every
// --interval-ms and renders a live dashboard: service rates + latency
// percentiles from the window ring, per-tenant MB/s from consecutive scrape
// deltas, per-device occupancy/health, and adapt codec routing shares.
// Neither touches the server's data path — the scrape is answered from the
// event loop's cached snapshot.

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <map>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness/driver.h"
#include "src/adapt/policy.h"
#include "src/codecs/codec.h"
#include "src/codecs/entropy.h"
#include "src/core/dpzip_codec.h"
#include "src/fault/fault_plan.h"
#include "src/hw/device_configs.h"
#include "src/obs/format.h"
#include "src/obs/json.h"
#include "src/obs/prom.h"
#include "src/obs/report.h"
#include "src/obs/table.h"
#include "src/runtime/fleet.h"
#include "src/runtime/offload_runtime.h"
#include "src/runtime/placement.h"
#include "src/svc/client.h"
#include "src/svc/server.h"
#include "src/svc/wire.h"
#include "src/trace/breakdown.h"
#include "src/trace/trace.h"

namespace {

using cdpu::ByteSpan;
using cdpu::ByteVec;

bool ReadFile(const std::string& path, ByteVec* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool WriteFile(const std::string& path, ByteSpan data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

int Usage() {
  std::fprintf(stderr,
               "usage: cdpu_cli compress|decompress <codec> <in> <out>\n"
               "       cdpu_cli bench <codec> <in> [chunk_bytes]\n"
               "                [--trace-out=PATH] [--trace-sample=P]\n"
               "       cdpu_cli bench list|run|validate ...   (the cdpu_bench experiment driver)\n"
               "       cdpu_cli offload <codec>|auto <in> [--threads=N] [--batch=B]\n"
               "                [--chunk=BYTES] [--qps=N] [--device=NAME]\n"
               "                [--devices=NAME[:COUNT],...] [--placement=POLICY]\n"
               "                [--fault-rate=P] [--fault-kinds=K,K,...] [--fault-seed=S]\n"
               "                [--trace-out=PATH] [--trace-sample=P]\n"
               "       cdpu_cli serve [--host=A] [--port=N] [--device=NAME] [--engines=N]\n"
               "                [--devices=NAME[:COUNT],...] [--placement=POLICY]\n"
               "                [--max-inflight=N] [--greedy] [--tenants=N]\n"
               "                [--max-sessions=N] [--max-seconds=S] [--port-file=PATH]\n"
               "                [--fault-rate=P] [--fault-kinds=K,K,...] [--fault-seed=S]\n"
               "                [--codec=NAME] [--adapt-off] [--adapt-mode=auto|bypass-only]\n"
               "                [--adapt-bias=throughput|balanced|ratio] [--adapt-probe=BYTES]\n"
               "                [--adapt-candidates=NAME,NAME,...]\n"
               "                [--trace-out=PATH] [--trace-sample=P]\n"
               "       cdpu_cli client compress|decompress <codec>|auto <in> <out>\n"
               "                [--host=A] [--port=N] [--tenant=T] [--retries=N]\n"
               "       cdpu_cli stats <host> --port=N [--tenant=T] [--prom]\n"
               "       cdpu_cli top <host> --port=N [--interval-ms=MS] [--count=N]\n"
               "       cdpu_cli entropy <in> [chunk_bytes]\n"
               "       cdpu_cli list\n");
  return 2;
}

// Strict unsigned parse: the whole token must be decimal digits. (strtoull's
// "parse what you can" behaviour let `bench <codec> <in> junk` run with a
// zero chunk size and exit 0.)
bool ParseUint(const char* s, uint64_t* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  uint64_t v = std::strtoull(s, &end, 10);
  if (errno != 0 || end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

bool ParseDoubleValue(const char* s, double* out) {
  if (s == nullptr || *s == '\0') {
    return false;
  }
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(s, &end);
  if (errno != 0 || end == s || *end != '\0') {
    return false;
  }
  *out = v;
  return true;
}

// Shared --trace-out / --trace-sample handling for bench/offload/serve.
struct TraceArgs {
  std::string out;      // Chrome trace path; may be empty with tracing on
  double sample = 1.0;  // fraction of requests traced
  bool enabled = false;

  // Returns true if `arg` was one of the trace flags; *bad is set (with a
  // message already printed) when its value does not parse.
  bool Parse(const std::string& arg, bool* bad) {
    if (arg.rfind("--trace-out=", 0) == 0) {
      out = arg.substr(12);
      enabled = true;
      return true;
    }
    if (arg.rfind("--trace-sample=", 0) == 0) {
      if (!ParseDoubleValue(arg.c_str() + 15, &sample) || sample < 0.0 || sample > 1.0) {
        std::fprintf(stderr, "--trace-sample must be a number in [0, 1]\n");
        *bad = true;
      }
      enabled = true;
      return true;
    }
    return false;
  }

  std::unique_ptr<cdpu::trace::TraceSink> MakeSink() const {
    if (!enabled) {
      return nullptr;
    }
    cdpu::trace::TraceSinkOptions topts;
    topts.sample_rate = sample;
    return std::make_unique<cdpu::trace::TraceSink>(topts);
  }

  // Stops the sink, prints the live latency breakdown, and writes the Chrome
  // trace if --trace-out was given. Returns nonzero on a write failure.
  // `device_names` resolves fleet device slots in the per-placement split.
  int Report(cdpu::trace::TraceSink* sink, const std::string& run_name,
             const std::vector<std::string>& device_names = {}) const {
    sink->Stop();
    std::vector<cdpu::trace::SpanRecord> spans = sink->Snapshot();
    cdpu::trace::Breakdown breakdown = cdpu::trace::BuildBreakdown(
        spans, sink, device_names.empty() ? nullptr : &device_names);
    cdpu::obs::Reporter reporter;
    reporter.SetRun(run_name, "Live latency breakdown",
                    "per-request spans aggregated by phase", "cli");
    cdpu::trace::ExportBreakdown(breakdown, sink->counters(), "trace.", &reporter);
    reporter.PrintHuman();
    if (!out.empty()) {
      cdpu::Status st = cdpu::trace::WriteChromeTrace(spans, sink, out);
      if (!st.ok()) {
        std::fprintf(stderr, "cannot write trace: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("chrome trace written to %s (%zu spans)\n", out.c_str(), spans.size());
    }
    return 0;
  }
};

// Applies `rate` to every kind named in the comma-separated `kinds` list.
bool ApplyFaultKinds(const std::string& kinds, double rate, cdpu::FaultPlan* plan) {
  size_t pos = 0;
  while (pos <= kinds.size()) {
    size_t comma = kinds.find(',', pos);
    std::string token =
        kinds.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    cdpu::FaultKind kind;
    if (!cdpu::ParseFaultKind(token, &kind)) {
      std::fprintf(stderr, "unknown fault kind: %s (verify|timeout|stall|reset)\n",
                   token.c_str());
      return false;
    }
    plan->rate[static_cast<uint32_t>(kind)] = rate;
    if (comma == std::string::npos) {
      break;
    }
    pos = comma + 1;
  }
  return true;
}

// Shared --devices/--placement handling for offload/serve (ISSUE 7). An
// empty `devices_list` degenerates to a fleet of one from `device_name`.
bool BuildFleetSpecs(const std::string& devices_list, const std::string& device_name,
                     std::vector<cdpu::FleetDeviceSpec>* specs) {
  cdpu::Status st =
      cdpu::ParseDeviceList(devices_list.empty() ? device_name : devices_list, specs);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return false;
  }
  return true;
}

std::string JoinDeviceNames(const std::vector<cdpu::FleetDeviceSpec>& specs) {
  std::string joined;
  for (const cdpu::FleetDeviceSpec& s : specs) {
    if (!joined.empty()) {
      joined += ",";
    }
    joined += s.name;
  }
  return joined;
}

// Per-device routed share + health, printed after a multi-device run.
void PrintFleetDevices(const cdpu::FleetStats& fs) {
  if (fs.devices.size() <= 1) {
    return;
  }
  uint64_t routed_total = 0;
  for (const cdpu::FleetDeviceStats& d : fs.devices) {
    routed_total += d.router.routed;
  }
  std::printf("  placement           per-device routed share\n");
  for (const cdpu::FleetDeviceStats& d : fs.devices) {
    double share = routed_total > 0 ? 100.0 * static_cast<double>(d.router.routed) /
                                          static_cast<double>(routed_total)
                                    : 0.0;
    std::printf("    %-14s %8llu jobs (%5.1f%%)  wall mean %8.1f us  %s\n",
                d.name.c_str(), static_cast<unsigned long long>(d.router.routed), share,
                d.runtime.wall_latency_us.mean(),
                d.router.healthy ? "healthy" : "degraded");
  }
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Bench(const std::string& codec_name, const std::string& path, size_t chunk,
          const TraceArgs& trace_args) {
  std::unique_ptr<cdpu::Codec> codec = cdpu::MakeCodec(codec_name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    return 2;
  }
  ByteVec data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  if (chunk == 0 || chunk > data.size()) {
    chunk = data.size();
  }

  // With tracing on, each compress/decompress call is a kCodec span (plus
  // whatever sub-spans the codec's own LZ77/entropy hooks emit).
  std::unique_ptr<cdpu::trace::TraceSink> sink = trace_args.MakeSink();
  cdpu::trace::TraceSink::Writer* writer =
      sink != nullptr ? sink->RegisterWriter("bench") : nullptr;
  uint16_t label = sink != nullptr ? sink->InternLabel(codec->name()) : 0;
  auto timed_call = [&](auto&& fn) {
    uint64_t trace_id = sink != nullptr ? sink->StartRequest() : 0;
    std::optional<cdpu::trace::ScopedTraceContext> tctx;
    uint64_t span_start = 0;
    if (trace_id != 0) {
      tctx.emplace(writer, trace_id, 0, label);
      span_start = cdpu::trace::NowNs();
    }
    auto result = fn();
    if (trace_id != 0) {
      cdpu::trace::EmitSpan(writer, trace_id, 0, label, cdpu::trace::Phase::kCodec,
                            span_start, cdpu::trace::NowNs());
    }
    return result;
  };

  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  double c_seconds = 0;
  double d_seconds = 0;
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    ByteSpan span(data.data() + off, chunk);
    ByteVec compressed;
    double t0 = NowSeconds();
    auto c = timed_call([&] { return codec->Compress(span, &compressed); });
    double t1 = NowSeconds();
    if (!c.ok()) {
      std::fprintf(stderr, "compress failed: %s\n", c.status().ToString().c_str());
      return 1;
    }
    ByteVec restored;
    double t2 = NowSeconds();
    auto d = timed_call([&] { return codec->Decompress(compressed, &restored); });
    double t3 = NowSeconds();
    if (!d.ok() || !std::equal(restored.begin(), restored.end(), span.begin())) {
      std::fprintf(stderr, "round-trip FAILED at offset %zu\n", off);
      return 1;
    }
    in_bytes += chunk;
    out_bytes += compressed.size();
    c_seconds += t1 - t0;
    d_seconds += t3 - t2;
  }
  std::printf("%s on %s (%zu-byte chunks):\n", codec->name().c_str(), path.c_str(), chunk);
  std::printf("  ratio       %s\n",
              cdpu::FmtPercent(static_cast<double>(out_bytes) / static_cast<double>(in_bytes), 1)
                  .c_str());
  std::printf("  compress    %s MB/s\n", cdpu::FmtMbps(in_bytes, c_seconds).c_str());
  std::printf("  decompress  %s MB/s\n", cdpu::FmtMbps(in_bytes, d_seconds).c_str());
  if (sink != nullptr) {
    return trace_args.Report(sink.get(), "bench_trace");
  }
  return 0;
}

// Returns true when `arg` is --<name>=...; *bad is set (with a message) when
// the value is not a clean decimal number.
bool ParseFlag(const std::string& arg, const char* name, uint64_t* out, bool* bad) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) {
    return false;
  }
  if (!ParseUint(arg.c_str() + prefix.size(), out)) {
    std::fprintf(stderr, "bad numeric value in %s\n", arg.c_str());
    *bad = true;
  }
  return true;
}

int Offload(const std::string& codec_name, const std::string& path, int argc, char** argv,
            int first_flag) {
  uint64_t threads = 4;
  uint64_t batch = 8;
  uint64_t chunk = 65536;
  uint64_t qps = 4;
  uint64_t fault_seed = 0x5eed;
  double fault_rate = 0.0;
  std::string fault_kinds = "verify,timeout,stall,reset";
  std::string device_name = "qat8970";
  std::string devices_list;
  std::string placement_name;
  TraceArgs trace_args;
  bool bad_flag = false;
  for (int i = first_flag; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "threads", &threads, &bad_flag) ||
        ParseFlag(arg, "batch", &batch, &bad_flag) ||
        ParseFlag(arg, "chunk", &chunk, &bad_flag) ||
        ParseFlag(arg, "qps", &qps, &bad_flag) ||
        ParseFlag(arg, "fault-seed", &fault_seed, &bad_flag) ||
        trace_args.Parse(arg, &bad_flag)) {
      if (bad_flag) {
        return 2;
      }
      continue;
    }
    if (arg.rfind("--device=", 0) == 0) {
      device_name = arg.substr(9);
      continue;
    }
    if (arg.rfind("--devices=", 0) == 0) {
      devices_list = arg.substr(10);
      if (devices_list.empty()) {
        std::fprintf(stderr, "--devices requires a device list (name[:count],...)\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--placement=", 0) == 0) {
      placement_name = arg.substr(12);
      continue;
    }
    if (arg.rfind("--fault-rate=", 0) == 0) {
      if (!ParseDoubleValue(arg.c_str() + 13, &fault_rate) || fault_rate < 0.0 ||
          fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be a number in [0, 1]\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--fault-kinds=", 0) == 0) {
      fault_kinds = arg.substr(14);
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage();
  }
  if (threads == 0 || batch == 0 || chunk == 0 || qps == 0) {
    std::fprintf(stderr, "--threads/--batch/--chunk/--qps must be positive\n");
    return 2;
  }

  std::vector<cdpu::FleetDeviceSpec> specs;
  if (!BuildFleetSpecs(devices_list, device_name, &specs)) {
    return 2;
  }
  cdpu::PlacementOptions placement;
  if (!placement_name.empty() &&
      !cdpu::ParsePlacementPolicy(placement_name, &placement.policy)) {
    std::fprintf(stderr,
                 "unknown placement policy: %s "
                 "(static|size-threshold|least-outstanding|ewma-service-rate)\n",
                 placement_name.c_str());
    return 2;
  }

  const bool auto_codec = codec_name == "auto";
  if (!auto_codec && cdpu::MakeCodec(codec_name) == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    return 2;
  }
  ByteVec data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  if (chunk > data.size()) {
    chunk = data.size();
  }
  size_t chunks = data.size() / chunk;
  if (chunks == 0) {
    std::fprintf(stderr, "input smaller than one chunk\n");
    return 1;
  }

  cdpu::RuntimeOptions opts;
  opts.codec = auto_codec ? "zstd-1" : codec_name;  // concrete runtime default
  opts.queue_pairs = static_cast<uint32_t>(qps);
  opts.batch_size = static_cast<uint32_t>(batch);
  opts.fault_plan.seed = fault_seed;
  if (fault_rate > 0.0 && !ApplyFaultKinds(fault_kinds, fault_rate, &opts.fault_plan)) {
    return 2;
  }
  std::unique_ptr<cdpu::trace::TraceSink> sink = trace_args.MakeSink();
  opts.trace_sink = sink.get();
  // AUTO: every request names the "auto" pseudo-codec and the runtime's
  // policy engine resolves it per payload (declared before the runtime so it
  // outlives the reaper threads feeding it).
  std::unique_ptr<cdpu::adapt::AdaptivePolicyEngine> adapt_engine;
  if (auto_codec) {
    adapt_engine = std::make_unique<cdpu::adapt::AdaptivePolicyEngine>(cdpu::adapt::AdaptOptions{});
    opts.adapt_engine = adapt_engine.get();
  }

  cdpu::FleetOptions fleet_opts;
  fleet_opts.base = opts;
  fleet_opts.placement = placement;
  for (cdpu::FleetDeviceSpec& spec : specs) {
    spec.fault_plan = opts.fault_plan;  // CLI fault flags apply fleet-wide
    if (specs.size() == 1) {
      spec.engine_threads = static_cast<uint32_t>(
          std::max<uint64_t>(1, std::min<uint64_t>(threads, spec.config.engines)));
    }
  }
  fleet_opts.devices = specs;
  cdpu::FleetRuntime runtime(fleet_opts);

  double t0 = NowSeconds();
  std::vector<std::thread> clients;
  std::vector<uint64_t> verify_failures(threads, 0);
  for (uint64_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (size_t c = t; c < chunks; c += threads) {
        ByteSpan span(data.data() + c * chunk, chunk);
        cdpu::OffloadRequest creq;
        creq.op = cdpu::CdpuOp::kCompress;
        if (auto_codec) {
          creq.codec = "auto";
        }
        creq.input = span;
        creq.queue_pair = static_cast<uint32_t>(t % qps);
        cdpu::OffloadResult cres = runtime.Submit(std::move(creq)).get();
        if (!cres.status.ok()) {
          ++verify_failures[t];
          continue;
        }
        cdpu::OffloadRequest dreq;
        dreq.op = cdpu::CdpuOp::kDecompress;
        dreq.codec = cres.codec_used;  // AUTO: whatever the policy picked
        dreq.input = cres.output;
        dreq.ratio_hint = cres.ratio;
        dreq.queue_pair = static_cast<uint32_t>(t % qps);
        cdpu::OffloadResult dres = runtime.Submit(std::move(dreq)).get();
        if (!dres.status.ok() ||
            !std::equal(dres.output.begin(), dres.output.end(), span.begin(), span.end())) {
          ++verify_failures[t];
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();
  double wall_seconds = NowSeconds() - t0;
  runtime.Shutdown();  // folds per-engine-thread stats

  uint64_t failures = 0;
  for (uint64_t f : verify_failures) {
    failures += f;
  }
  cdpu::FleetStats fs = runtime.Snapshot();
  cdpu::RuntimeStats s = fs.merged;
  std::printf("offload %s on %s via %s (%zu x %llu-byte chunks)\n", codec_name.c_str(),
              path.c_str(), JoinDeviceNames(specs).c_str(), chunks,
              static_cast<unsigned long long>(chunk));
  if (specs.size() > 1) {
    std::printf("  placement policy    %s\n",
                cdpu::PlacementPolicyName(fleet_opts.placement.policy));
  }
  std::printf("  threads/qps/batch   %llu / %llu / %llu\n",
              static_cast<unsigned long long>(threads), static_cast<unsigned long long>(qps),
              static_cast<unsigned long long>(batch));
  std::printf("  round-trips         %llu ok, %llu failed\n",
              static_cast<unsigned long long>(chunks - failures),
              static_cast<unsigned long long>(failures));
  std::printf("  host throughput     %.1f MB/s (wall)\n",
              static_cast<double>(s.bytes_in) / 1e6 / wall_seconds);
  std::printf("  device model        %.2f GB/s over %.1f ms simulated\n", s.sim_gbps(),
              static_cast<double>(s.sim_makespan) / 1e6);
  std::printf("  latency (wall)      mean %.1f us  max %.1f us\n", s.wall_latency_us.mean(),
              s.wall_latency_us.max());
  std::printf("  latency (device)    mean %.1f us  max %.1f us\n", s.device_latency_us.mean(),
              s.device_latency_us.max());
  std::printf("  doorbells           %llu (%.1f descriptors/doorbell)\n",
              static_cast<unsigned long long>(s.doorbells),
              s.doorbells == 0 ? 0.0
                               : static_cast<double>(s.jobs_completed) /
                                     static_cast<double>(s.doorbells));
  uint32_t total_slots = 0;
  for (const cdpu::FleetDeviceSpec& spec : specs) {
    total_slots += spec.config.queue_limit;
  }
  std::printf("  max in-flight       %llu of %u slots\n",
              static_cast<unsigned long long>(s.max_inflight), total_slots);
  if (opts.fault_plan.enabled()) {
    std::printf("  faults injected     %llu (", static_cast<unsigned long long>(s.faults_injected));
    for (uint32_t k = 0; k < cdpu::kNumFaultKinds; ++k) {
      std::printf("%s%s %llu", k == 0 ? "" : ", ",
                  cdpu::FaultKindName(static_cast<cdpu::FaultKind>(k)),
                  static_cast<unsigned long long>(s.faults_by_kind[k]));
    }
    std::printf(")\n");
    std::printf("  recovery            %llu retries, %llu CPU fallbacks\n",
                static_cast<unsigned long long>(s.retries),
                static_cast<unsigned long long>(s.fallbacks));
    std::printf("  device health       %s (%llu degradations, %llu re-probes)\n",
                s.device_healthy ? "healthy" : "degraded",
                static_cast<unsigned long long>(s.unhealthy_transitions),
                static_cast<unsigned long long>(s.reprobes));
  }
  if (adapt_engine != nullptr) {
    const cdpu::adapt::AdaptStats as = adapt_engine->Snapshot();
    std::printf("  adapt               %llu decisions (%llu profiled), %llu bypassed, "
                "%llu feedback\n",
                static_cast<unsigned long long>(as.decisions),
                static_cast<unsigned long long>(as.profiled),
                static_cast<unsigned long long>(as.bypassed),
                static_cast<unsigned long long>(as.feedback));
    for (const cdpu::adapt::AdaptCodecStats& c : as.codecs) {
      if (c.chosen > 0) {
        std::printf("    codec %-10s    %llu chosen\n", c.codec.c_str(),
                    static_cast<unsigned long long>(c.chosen));
      }
    }
  }
  PrintFleetDevices(fs);
  if (sink != nullptr) {
    int rc = trace_args.Report(sink.get(), "offload_trace",
                               specs.size() > 1 ? runtime.DeviceNames()
                                                : std::vector<std::string>{});
    if (rc != 0) {
      return rc;
    }
  }
  return failures == 0 ? 0 : 1;
}

std::atomic<bool> g_stop_serving{false};

void HandleStopSignal(int) { g_stop_serving.store(true); }

int Serve(int argc, char** argv, int first_flag) {
  cdpu::svc::ServerOptions opts;
  std::string device_name = "qat8970";
  std::string devices_list;
  std::string placement_name;
  std::string fault_kinds = "verify,timeout,stall,reset";
  std::string port_file;
  std::string serve_codec;
  std::string adapt_candidates;
  double fault_rate = 0.0;
  uint64_t port = 0;
  uint64_t adapt_probe = 0;
  uint64_t engines = 0;
  uint64_t max_inflight = 0;
  uint64_t tenants = 4;
  uint64_t max_sessions = 256;
  uint64_t max_seconds = 0;
  uint64_t fault_seed = 0x5eed;
  TraceArgs trace_args;
  bool bad_flag = false;
  for (int i = first_flag; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "port", &port, &bad_flag) ||
        ParseFlag(arg, "engines", &engines, &bad_flag) ||
        ParseFlag(arg, "max-inflight", &max_inflight, &bad_flag) ||
        ParseFlag(arg, "tenants", &tenants, &bad_flag) ||
        ParseFlag(arg, "max-sessions", &max_sessions, &bad_flag) ||
        ParseFlag(arg, "max-seconds", &max_seconds, &bad_flag) ||
        ParseFlag(arg, "fault-seed", &fault_seed, &bad_flag) ||
        ParseFlag(arg, "adapt-probe", &adapt_probe, &bad_flag) ||
        trace_args.Parse(arg, &bad_flag)) {
      if (bad_flag) {
        return 2;
      }
      continue;
    }
    if (arg.rfind("--host=", 0) == 0) {
      opts.bind_address = arg.substr(7);
      continue;
    }
    if (arg.rfind("--device=", 0) == 0) {
      device_name = arg.substr(9);
      continue;
    }
    if (arg.rfind("--devices=", 0) == 0) {
      devices_list = arg.substr(10);
      if (devices_list.empty()) {
        std::fprintf(stderr, "--devices requires a device list (name[:count],...)\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--placement=", 0) == 0) {
      placement_name = arg.substr(12);
      continue;
    }
    if (arg.rfind("--port-file=", 0) == 0) {
      port_file = arg.substr(12);
      continue;
    }
    if (arg == "--greedy") {
      opts.admission.arbitration = cdpu::VfArbitration::kUnarbitrated;
      continue;
    }
    if (arg.rfind("--fault-rate=", 0) == 0) {
      if (!ParseDoubleValue(arg.c_str() + 13, &fault_rate) || fault_rate < 0.0 ||
          fault_rate > 1.0) {
        std::fprintf(stderr, "--fault-rate must be a number in [0, 1]\n");
        return 2;
      }
      continue;
    }
    if (arg.rfind("--fault-kinds=", 0) == 0) {
      fault_kinds = arg.substr(14);
      continue;
    }
    if (arg.rfind("--codec=", 0) == 0) {
      serve_codec = arg.substr(8);
      continue;
    }
    if (arg == "--adapt-off") {
      opts.adapt.enabled = false;
      continue;
    }
    if (arg.rfind("--adapt-mode=", 0) == 0) {
      const std::string mode = arg.substr(13);
      if (mode == "auto") {
        opts.adapt.mode = cdpu::adapt::AdaptMode::kAuto;
      } else if (mode == "bypass-only") {
        opts.adapt.mode = cdpu::adapt::AdaptMode::kBypassOnly;
      } else {
        std::fprintf(stderr, "unknown adapt mode: %s (auto|bypass-only)\n", mode.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--adapt-bias=", 0) == 0) {
      if (!cdpu::adapt::ParseAdaptBias(arg.substr(13), &opts.adapt.bias)) {
        std::fprintf(stderr, "unknown adapt bias: %s (throughput|balanced|ratio)\n",
                     arg.c_str() + 13);
        return 2;
      }
      continue;
    }
    if (arg.rfind("--adapt-candidates=", 0) == 0) {
      adapt_candidates = arg.substr(19);
      if (adapt_candidates.empty()) {
        std::fprintf(stderr, "--adapt-candidates requires a codec list (name,name,...)\n");
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage();
  }
  if (!serve_codec.empty()) {
    uint8_t wc = 0;
    uint8_t wl = 0;
    if (serve_codec == "auto" || !cdpu::svc::WireCodecFromName(serve_codec, &wc, &wl) ||
        cdpu::MakeCodec(serve_codec) == nullptr) {
      std::fprintf(stderr, "unknown codec: %s\n", serve_codec.c_str());
      return Usage();
    }
    opts.runtime.codec = serve_codec;
    opts.adapt.default_codec = serve_codec;
  }
  if (adapt_probe > 0) {
    opts.adapt.probe_bytes = static_cast<size_t>(adapt_probe);
  }
  if (!adapt_candidates.empty()) {
    opts.adapt.candidates.clear();
    size_t start = 0;
    while (start <= adapt_candidates.size()) {
      size_t comma = adapt_candidates.find(',', start);
      if (comma == std::string::npos) {
        comma = adapt_candidates.size();
      }
      std::string name = adapt_candidates.substr(start, comma - start);
      if (!name.empty()) {
        uint8_t wc = 0;
        uint8_t wl = 0;
        if (name == "auto" || !cdpu::svc::WireCodecFromName(name, &wc, &wl) ||
            cdpu::MakeCodec(name) == nullptr) {
          std::fprintf(stderr, "unknown codec in --adapt-candidates: %s\n", name.c_str());
          return Usage();
        }
        opts.adapt.candidates.push_back(std::move(name));
      }
      start = comma + 1;
    }
    if (opts.adapt.candidates.empty()) {
      std::fprintf(stderr, "--adapt-candidates requires a codec list (name,name,...)\n");
      return 2;
    }
  }
  std::vector<cdpu::FleetDeviceSpec> specs;
  if (!BuildFleetSpecs(devices_list, device_name, &specs)) {
    return 2;
  }
  if (!placement_name.empty() &&
      !cdpu::ParsePlacementPolicy(placement_name, &opts.placement.policy)) {
    std::fprintf(stderr,
                 "unknown placement policy: %s "
                 "(static|size-threshold|least-outstanding|ewma-service-rate)\n",
                 placement_name.c_str());
    return 2;
  }
  opts.runtime.device = specs[0].config;
  opts.port = static_cast<uint16_t>(port);
  opts.max_sessions = static_cast<uint32_t>(max_sessions);
  opts.admission.max_inflight = static_cast<uint32_t>(max_inflight);
  opts.admission.expected_tenants = static_cast<uint32_t>(std::max<uint64_t>(1, tenants));
  if (engines > 0) {
    opts.runtime.engine_threads = static_cast<uint32_t>(engines);
  }
  opts.runtime.fault_plan.seed = fault_seed;
  if (fault_rate > 0.0 &&
      !ApplyFaultKinds(fault_kinds, fault_rate, &opts.runtime.fault_plan)) {
    return 2;
  }
  for (cdpu::FleetDeviceSpec& spec : specs) {
    spec.fault_plan = opts.runtime.fault_plan;  // fault flags apply fleet-wide
  }
  opts.devices = specs;
  std::unique_ptr<cdpu::trace::TraceSink> sink = trace_args.MakeSink();
  opts.trace_sink = sink.get();

  cdpu::svc::ServiceServer server(opts);
  cdpu::Status st = server.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "serve failed: %s\n", st.ToString().c_str());
    return 1;
  }
  if (!port_file.empty()) {
    std::ofstream pf(port_file, std::ios::trunc);
    pf << server.port() << "\n";
  }
  std::printf("serving on %s:%u (devices %s, placement %s, %s admission, ceiling auto)\n",
              opts.bind_address.c_str(), server.port(), JoinDeviceNames(specs).c_str(),
              cdpu::PlacementPolicyName(opts.placement.policy),
              opts.admission.arbitration == cdpu::VfArbitration::kWeightedFair ? "fair"
                                                                               : "greedy");
  std::fflush(stdout);

  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);
  double started = NowSeconds();
  while (!g_stop_serving.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    if (max_seconds > 0 && NowSeconds() - started >= static_cast<double>(max_seconds)) {
      break;
    }
  }
  server.Stop();

  cdpu::svc::ServiceStats s = server.Snapshot();
  std::printf("service stats\n");
  std::printf("  sessions            %llu accepted, %llu closed, %llu protocol errors\n",
              static_cast<unsigned long long>(s.sessions_accepted),
              static_cast<unsigned long long>(s.sessions_closed),
              static_cast<unsigned long long>(s.protocol_errors));
  std::printf("  requests            %llu ok, %llu busy, %llu failed\n",
              static_cast<unsigned long long>(s.requests_ok),
              static_cast<unsigned long long>(s.requests_busy),
              static_cast<unsigned long long>(s.requests_failed));
  std::printf("  socket bytes        %llu rx, %llu tx\n",
              static_cast<unsigned long long>(s.bytes_rx),
              static_cast<unsigned long long>(s.bytes_tx));
  if (s.pool.touched()) {
    const double denom = static_cast<double>(s.pool.hits + s.pool.misses);
    std::printf("  buffer pool         %llu hits, %llu misses, %llu oversize (%.1f%% hit)\n",
                static_cast<unsigned long long>(s.pool.hits),
                static_cast<unsigned long long>(s.pool.misses),
                static_cast<unsigned long long>(s.pool.oversize),
                denom > 0 ? 100.0 * static_cast<double>(s.pool.hits) / denom : 0.0);
    std::printf("  pool memory         %llu slabs, %.1f MiB banked, %llu buffers outstanding\n",
                static_cast<unsigned long long>(s.pool.slabs),
                static_cast<double>(s.pool.slab_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.pool.outstanding_buffers));
  }
  for (const cdpu::svc::TenantSnapshot& t : s.tenants) {
    std::printf("  tenant %-4u         %llu admitted, %llu busy, mean %.1f us\n", t.tenant,
                static_cast<unsigned long long>(t.admitted),
                static_cast<unsigned long long>(t.rejected), t.wall_latency_us.mean());
  }
  if (opts.runtime.fault_plan.enabled()) {
    std::printf("  recovery            %llu faults, %llu retries, %llu CPU fallbacks\n",
                static_cast<unsigned long long>(s.runtime.faults_injected),
                static_cast<unsigned long long>(s.runtime.retries),
                static_cast<unsigned long long>(s.runtime.fallbacks));
  }
  if (s.adapt.decisions > 0 || s.requests_stored > 0) {
    std::printf("  adapt               %llu decisions (%llu profiled, %llu skipped), "
                "%llu bypassed (%.1f MiB), %llu feedback\n",
                static_cast<unsigned long long>(s.adapt.decisions),
                static_cast<unsigned long long>(s.adapt.profiled),
                static_cast<unsigned long long>(s.adapt.profile_skipped),
                static_cast<unsigned long long>(s.adapt.bypassed),
                static_cast<double>(s.adapt.bypass_bytes) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.adapt.feedback));
    for (const cdpu::adapt::AdaptCodecStats& c : s.adapt.codecs) {
      if (c.chosen > 0 || c.feedback > 0) {
        std::printf("    codec %-10s    %llu chosen, %llu feedback\n", c.codec.c_str(),
                    static_cast<unsigned long long>(c.chosen),
                    static_cast<unsigned long long>(c.feedback));
      }
    }
  }
  PrintFleetDevices(s.fleet);
  if (sink != nullptr) {
    std::vector<std::string> names;
    if (specs.size() > 1) {
      for (const cdpu::FleetDeviceSpec& spec : specs) {
        names.push_back(spec.name);
      }
    }
    return trace_args.Report(sink.get(), "serve_trace", names);
  }
  return 0;
}

int Client(int argc, char** argv, int first_arg) {
  if (argc < first_arg + 4) {
    return Usage();
  }
  std::string op = argv[first_arg];
  std::string codec_name = argv[first_arg + 1];
  std::string in_path = argv[first_arg + 2];
  std::string out_path = argv[first_arg + 3];
  if (op != "compress" && op != "decompress") {
    return Usage();
  }
  cdpu::svc::ClientOptions copts;
  copts.port = 0;
  uint64_t port = 0;
  uint64_t tenant = 0;
  uint64_t retries = 8;
  bool bad_flag = false;
  for (int i = first_arg + 4; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "port", &port, &bad_flag) ||
        ParseFlag(arg, "tenant", &tenant, &bad_flag) ||
        ParseFlag(arg, "retries", &retries, &bad_flag)) {
      if (bad_flag) {
        return 2;
      }
      continue;
    }
    if (arg.rfind("--host=", 0) == 0) {
      copts.host = arg.substr(7);
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage();
  }
  if (port == 0) {
    std::fprintf(stderr, "client needs --port=N\n");
    return 2;
  }
  copts.port = static_cast<uint16_t>(port);
  copts.tenant = static_cast<uint32_t>(tenant);
  copts.busy_retries = static_cast<uint32_t>(retries);

  uint8_t codec_id = 0;
  uint8_t level = 0;
  if (!cdpu::svc::WireCodecFromName(codec_name, &codec_id, &level)) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    return Usage();
  }
  ByteVec in;
  if (!ReadFile(in_path, &in)) {
    std::fprintf(stderr, "cannot read %s\n", in_path.c_str());
    return 1;
  }

  cdpu::svc::ServiceClient client(copts);
  cdpu::svc::CallResult r =
      op == "compress" ? client.Compress(codec_name, in) : client.Decompress(codec_name, in);
  if (!r.status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", op.c_str(), r.status.ToString().c_str());
    return 1;
  }
  if (!WriteFile(out_path, r.output)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%s via %s:%u: %zu -> %zu bytes (%.1f%%), %.1f us%s\n", op.c_str(),
              copts.host.c_str(), copts.port, in.size(), r.output.size(),
              in.empty() ? 0.0 : 100.0 * static_cast<double>(r.output.size()) / in.size(),
              static_cast<double>(r.wall_ns) / 1e3,
              r.busy_retries > 0
                  ? (" (" + std::to_string(r.busy_retries) + " BUSY retries)").c_str()
                  : "");
  if (op == "compress" && codec_name == "auto") {
    const std::string resolved =
        r.stored() ? "store" : cdpu::svc::WireCodecToName(r.codec, r.level);
    std::printf("  auto -> %s%s\n", resolved.c_str(),
                r.profile_skipped() ? " (profile skipped)" : "");
  }
  return 0;
}

// Shared positional-host + flag parsing for the scrape commands. Returns
// false (with a message printed) when the command line is malformed.
bool ParseScrapeTarget(int argc, char** argv, int first_arg, const char* cmd,
                       std::string* host, int* flags_start) {
  if (argc < first_arg + 1 || std::strncmp(argv[first_arg], "--", 2) == 0) {
    std::fprintf(stderr, "%s needs a host (IPv4 literal)\n", cmd);
    return false;
  }
  *host = argv[first_arg];
  *flags_start = first_arg + 1;
  return true;
}

int Stats(int argc, char** argv, int first_arg) {
  std::string host;
  int flags_start = 0;
  if (!ParseScrapeTarget(argc, argv, first_arg, "stats", &host, &flags_start)) {
    return Usage();
  }
  uint64_t port = 0;
  uint64_t tenant = 0;
  bool prom = false;
  bool bad_flag = false;
  for (int i = flags_start; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "port", &port, &bad_flag) ||
        ParseFlag(arg, "tenant", &tenant, &bad_flag)) {
      if (bad_flag) {
        return 2;
      }
      continue;
    }
    if (arg == "--prom") {
      prom = true;
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage();
  }
  if (port == 0) {
    std::fprintf(stderr, "stats needs --port=N\n");
    return 2;
  }
  cdpu::svc::ClientOptions copts;
  copts.host = host;
  copts.port = static_cast<uint16_t>(port);
  copts.tenant = static_cast<uint32_t>(tenant);
  cdpu::svc::ServiceClient client(copts);
  cdpu::Result<std::string> fetched = client.FetchStats();
  if (!fetched.ok()) {
    std::fprintf(stderr, "stats scrape failed: %s\n", fetched.status().ToString().c_str());
    return 1;
  }
  if (!prom) {
    // The server's document is already JSON; print it verbatim so scripted
    // consumers see exactly the wire payload.
    std::printf("%s\n", fetched.value().c_str());
    return 0;
  }
  cdpu::Result<cdpu::obs::Json> doc = cdpu::obs::Json::Parse(fetched.value());
  if (!doc.ok()) {
    std::fprintf(stderr, "server returned unparseable JSON: %s\n",
                 doc.status().ToString().c_str());
    return 1;
  }
  const cdpu::obs::Json* metrics = doc.value().Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    std::fprintf(stderr, "stats document has no metrics section\n");
    return 1;
  }
  std::fputs(cdpu::obs::RenderPrometheus(*metrics).c_str(), stdout);
  return 0;
}

// Pulls the flat counter/gauge maps out of a parsed stats document.
void ExtractMetricMaps(const cdpu::obs::Json& doc,
                       std::map<std::string, uint64_t>* counters,
                       std::map<std::string, double>* gauges,
                       const cdpu::obs::Json** series) {
  *series = nullptr;
  const cdpu::obs::Json* metrics = doc.Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) {
    return;
  }
  if (const cdpu::obs::Json* c = metrics->Find("counters"); c != nullptr && c->is_object()) {
    for (const auto& [k, v] : c->members()) {
      (*counters)[k] = v.AsUint();
    }
  }
  if (const cdpu::obs::Json* g = metrics->Find("gauges"); g != nullptr && g->is_object()) {
    for (const auto& [k, v] : g->members()) {
      (*gauges)[k] = v.AsDouble();
    }
  }
  if (const cdpu::obs::Json* s = metrics->Find("series"); s != nullptr && s->is_object()) {
    *series = s;
  }
}

double SeriesField(const cdpu::obs::Json* series, const std::string& name,
                   const char* field) {
  if (series == nullptr) {
    return 0;
  }
  const cdpu::obs::Json* s = series->Find(name);
  if (s == nullptr || !s->is_object()) {
    return 0;
  }
  const cdpu::obs::Json* f = s->Find(field);
  return f != nullptr && f->is_number() ? f->AsDouble() : 0;
}

// One dashboard refresh. `prev_counters`/`prev_ns` are the previous scrape
// (empty/0 on the first tick — rate columns show 0 until there is a delta).
void RenderTop(const std::string& addr, const cdpu::obs::Json& doc,
               const std::map<std::string, uint64_t>& counters,
               const std::map<std::string, double>& gauges,
               const cdpu::obs::Json* series,
               const std::map<std::string, uint64_t>& prev_counters, uint64_t prev_ns,
               uint64_t captured_ns) {
  auto counter = [&](const std::string& k) -> uint64_t {
    auto it = counters.find(k);
    return it == counters.end() ? 0 : it->second;
  };
  auto gauge = [&](const std::string& k) -> double {
    auto it = gauges.find(k);
    return it == gauges.end() ? 0 : it->second;
  };
  const double elapsed =
      prev_ns != 0 && captured_ns > prev_ns ? static_cast<double>(captured_ns - prev_ns) / 1e9
                                            : 0;
  auto rate_mbps = [&](const std::string& k) -> double {
    if (elapsed <= 0) {
      return 0;
    }
    auto it = prev_counters.find(k);
    const uint64_t prev = it == prev_counters.end() ? 0 : it->second;
    const uint64_t now = counter(k);
    return now > prev ? static_cast<double>(now - prev) / 1e6 / elapsed : 0;
  };

  const cdpu::obs::Json* age = doc.Find("age_ms");
  const cdpu::obs::Json* window_ms = doc.Find("window_ms");
  std::printf("cdpu top — %s    window %.1fs    snapshot age %llums\n", addr.c_str(),
              window_ms != nullptr ? window_ms->AsDouble() / 1e3 : 0,
              age != nullptr ? static_cast<unsigned long long>(age->AsUint()) : 0ULL);

  // Live rates come from the server's own window ring (delta windows captured
  // on the event loop), not from client-side diffing — the latest window is
  // the freshest complete one.
  const cdpu::obs::Json* windows = doc.Find("windows");
  double rps = 0;
  double rx_mbps = 0;
  double tx_mbps = 0;
  const cdpu::obs::Json* win_e2e = nullptr;
  if (windows != nullptr && windows->is_array() && windows->size() > 0) {
    const cdpu::obs::Json& last = windows->at(windows->size() - 1);
    if (const cdpu::obs::Json* v = last.Find("rps")) rps = v->AsDouble();
    if (const cdpu::obs::Json* v = last.Find("rx_mbps")) rx_mbps = v->AsDouble();
    if (const cdpu::obs::Json* v = last.Find("tx_mbps")) tx_mbps = v->AsDouble();
    win_e2e = last.Find("e2e_us");
  }
  std::printf("service  %8.1f req/s   rx %7.1f MB/s   tx %7.1f MB/s   sessions %llu\n", rps,
              rx_mbps, tx_mbps,
              static_cast<unsigned long long>(counter("svc.sessions_accepted") -
                                              counter("svc.sessions_closed")));
  std::printf("totals   ok %llu   failed %llu   busy %llu   stored %llu   scrapes %llu\n",
              static_cast<unsigned long long>(counter("svc.requests_ok")),
              static_cast<unsigned long long>(counter("svc.requests_failed")),
              static_cast<unsigned long long>(counter("svc.requests_busy")),
              static_cast<unsigned long long>(counter("svc.requests_stored")),
              static_cast<unsigned long long>(counter("svc.stats_requests")));

  // Latency percentiles: prefer the freshest window's histogram delta; an
  // idle window has no samples, so fall back to the cumulative histogram.
  auto e2e_field = [&](const char* field) -> double {
    if (win_e2e != nullptr && win_e2e->is_object()) {
      if (const cdpu::obs::Json* f = win_e2e->Find(field); f != nullptr && f->is_number()) {
        return f->AsDouble();
      }
    }
    return SeriesField(series, "svc.e2e_hist_us", field);
  };
  std::printf("e2e lat  p50 %9.1f us   p90 %9.1f us   p99 %9.1f us   p999 %9.1f us%s\n",
              e2e_field("p50"), e2e_field("p90"), e2e_field("p99"), e2e_field("p999"),
              win_e2e != nullptr && win_e2e->is_object() ? "  (window)" : "  (cumulative)");

  // Per-tenant: completed/bytes totals are cumulative counters; MB/s is this
  // client's scrape-to-scrape delta.
  cdpu::obs::Table tenants("tenants", "",
                           {cdpu::obs::Column("tenant", "tenant", 0),
                            cdpu::obs::Column("completed", "completed", 0),
                            cdpu::obs::Column("rejected", "busy", 0),
                            cdpu::obs::Column("mbps", "MB/s in", 1),
                            cdpu::obs::Column("mean_us", "mean us", 1)});
  for (const auto& [key, value] : counters) {
    constexpr const char kPrefix[] = "svc.tenant";
    if (key.rfind(kPrefix, 0) != 0) {
      continue;
    }
    const size_t id_start = sizeof(kPrefix) - 1;
    const size_t dot = key.find('.', id_start);
    if (dot == std::string::npos || key.substr(dot + 1) != "admitted") {
      continue;  // one row per tenant, keyed off its admitted counter
    }
    const std::string id = key.substr(id_start, dot - id_start);
    const std::string tp = std::string(kPrefix) + id + ".";
    tenants.AddRow({id, counter(tp + "completed"), counter(tp + "rejected"),
                    rate_mbps(tp + "bytes_in"),
                    SeriesField(series, tp + "wall_latency_us", "mean")});
  }
  if (tenants.row_count() > 0) {
    std::printf("\n");
    tenants.Print();
  }

  // Per-device occupancy + health (multi-device fleets export under
  // svc.runtime.device.<name>.*; a single device only has the merged view).
  cdpu::obs::Table devices("devices", "",
                           {cdpu::obs::Column("device", "device"),
                            cdpu::obs::Column("routed", "routed", 0),
                            cdpu::obs::Column("share", "share", 1, "%"),
                            cdpu::obs::Column("outstanding", "outstanding", 0),
                            cdpu::obs::Column("p99_us", "wall p99 us", 1),
                            cdpu::obs::Column("health", "health")});
  constexpr const char kDevPrefix[] = "svc.runtime.device.";
  for (const auto& [key, value] : gauges) {
    if (key.rfind(kDevPrefix, 0) != 0) {
      continue;
    }
    const size_t name_start = sizeof(kDevPrefix) - 1;
    const size_t dot = key.find('.', name_start);
    if (dot == std::string::npos || key.substr(dot + 1) != "outstanding") {
      continue;  // one row per device, keyed off its occupancy gauge
    }
    const std::string name = key.substr(name_start, dot - name_start);
    const std::string dp = std::string(kDevPrefix) + name + ".";
    devices.AddRow({name, counter(dp + "routed"), gauge(dp + "routed_share") * 100.0,
                    gauge(dp + "outstanding"),
                    SeriesField(series, dp + "wall_hist_us", "p99"),
                    gauge(dp + "healthy") != 0 ? "healthy" : "DEGRADED"});
  }
  if (devices.row_count() == 0 && counters.count("svc.runtime.jobs_completed") > 0) {
    // Single-device runtimes export no per-device occupancy gauge; current
    // outstanding is the submit/retire counter difference.
    const uint64_t retired = counter("svc.runtime.jobs_completed") +
                             counter("svc.runtime.jobs_failed") +
                             counter("svc.runtime.jobs_canceled");
    const uint64_t submitted = counter("svc.runtime.jobs_submitted");
    devices.AddRow({"(merged)", counter("svc.runtime.jobs_completed"), 100.0,
                    static_cast<double>(submitted > retired ? submitted - retired : 0),
                    SeriesField(series, "svc.runtime.wall_hist_us", "p99"),
                    gauge("svc.runtime.device_healthy") != 0 ||
                            counters.count("svc.runtime.faults_injected") == 0
                        ? "healthy"
                        : "DEGRADED"});
  }
  if (devices.row_count() > 0) {
    std::printf("\n");
    devices.Print();
  }

  // Adapt routing shares: which codec the AUTO policy picked, as a fraction
  // of all decisions (the STORE bypass rides as its own line).
  uint64_t decisions = counter("svc.adapt.decisions");
  if (decisions > 0) {
    std::printf("\nadapt routing (%llu decisions): ",
                static_cast<unsigned long long>(decisions));
    bool first = true;
    for (const auto& [key, value] : counters) {
      constexpr const char kAdaptPrefix[] = "svc.adapt.codec.";
      if (key.rfind(kAdaptPrefix, 0) != 0 || value == 0) {
        continue;
      }
      const size_t name_start = sizeof(kAdaptPrefix) - 1;
      const size_t dot = key.find('.', name_start);
      if (dot == std::string::npos || key.substr(dot + 1) != "chosen") {
        continue;
      }
      std::printf("%s%s %.1f%%", first ? "" : "  ",
                  key.substr(name_start, dot - name_start).c_str(),
                  100.0 * static_cast<double>(value) / static_cast<double>(decisions));
      first = false;
    }
    const uint64_t bypassed = counter("svc.adapt.bypassed");
    if (bypassed > 0) {
      std::printf("%sstore %.1f%%", first ? "" : "  ",
                  100.0 * static_cast<double>(bypassed) / static_cast<double>(decisions));
    }
    std::printf("\n");
  }
  std::fflush(stdout);
}

int Top(int argc, char** argv, int first_arg) {
  std::string host;
  int flags_start = 0;
  if (!ParseScrapeTarget(argc, argv, first_arg, "top", &host, &flags_start)) {
    return Usage();
  }
  uint64_t port = 0;
  uint64_t tenant = 0;
  uint64_t interval_ms = 1000;
  uint64_t count = 0;  // 0 = refresh until SIGINT
  bool bad_flag = false;
  for (int i = flags_start; i < argc; ++i) {
    std::string arg = argv[i];
    if (ParseFlag(arg, "port", &port, &bad_flag) ||
        ParseFlag(arg, "tenant", &tenant, &bad_flag) ||
        ParseFlag(arg, "interval-ms", &interval_ms, &bad_flag) ||
        ParseFlag(arg, "count", &count, &bad_flag)) {
      if (bad_flag) {
        return 2;
      }
      continue;
    }
    std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
    return Usage();
  }
  if (port == 0) {
    std::fprintf(stderr, "top needs --port=N\n");
    return 2;
  }
  if (interval_ms == 0) {
    std::fprintf(stderr, "--interval-ms must be positive\n");
    return 2;
  }

  cdpu::svc::ClientOptions copts;
  copts.host = host;
  copts.port = static_cast<uint16_t>(port);
  copts.tenant = static_cast<uint32_t>(tenant);
  cdpu::svc::ServiceClient client(copts);
  const std::string addr = host + ":" + std::to_string(port);
  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  std::signal(SIGINT, HandleStopSignal);
  std::signal(SIGTERM, HandleStopSignal);

  std::map<std::string, uint64_t> prev_counters;
  uint64_t prev_ns = 0;
  uint64_t ticks = 0;
  int consecutive_failures = 0;
  while (!g_stop_serving.load()) {
    cdpu::Result<std::string> fetched = client.FetchStats();
    if (!fetched.ok()) {
      // A transient failure (server restarting, connection dropped) gets a
      // couple of retries before the dashboard gives up.
      if (++consecutive_failures >= 3) {
        std::fprintf(stderr, "top: scrape failed: %s\n",
                     fetched.status().ToString().c_str());
        return 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    consecutive_failures = 0;
    cdpu::Result<cdpu::obs::Json> parsed = cdpu::obs::Json::Parse(fetched.value());
    if (!parsed.ok()) {
      std::fprintf(stderr, "top: server returned unparseable JSON: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    const cdpu::obs::Json& doc = parsed.value();
    std::map<std::string, uint64_t> counters;
    std::map<std::string, double> gauges;
    const cdpu::obs::Json* series = nullptr;
    ExtractMetricMaps(doc, &counters, &gauges, &series);
    const cdpu::obs::Json* cap = doc.Find("captured_ns");
    const uint64_t captured_ns = cap != nullptr ? cap->AsUint() : 0;

    if (tty) {
      std::printf("\033[H\033[2J");  // home + clear: classic top(1) refresh
    } else if (ticks > 0) {
      std::printf("\n");
    }
    RenderTop(addr, doc, counters, gauges, series, prev_counters, prev_ns, captured_ns);
    prev_counters = std::move(counters);
    prev_ns = captured_ns;

    ++ticks;
    if (count > 0 && ticks >= count) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int Entropy(const std::string& path, size_t chunk) {
  ByteVec data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  if (chunk == 0 || chunk > data.size()) {
    chunk = data.size();
  }
  std::printf("offset        H (bits/byte)\n");
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    std::printf("%-12zu  %.3f\n", off,
                cdpu::ShannonEntropy(ByteSpan(data.data() + off, chunk)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdpu::DpzipCodec::RegisterWithFactory();
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];

  if (cmd == "list") {
    if (argc != 2) {
      return Usage();
    }
    std::printf("deflate[-1|6|9] gzip[-1|6|9] zstd[-1..12] lz4 snappy dpzip store auto\n");
    return 0;
  }
  if (cmd == "entropy") {
    if (argc < 3 || argc > 4) {
      return Usage();
    }
    uint64_t chunk = 0;
    if (argc == 4 && !ParseUint(argv[3], &chunk)) {
      std::fprintf(stderr, "bad chunk size: %s\n", argv[3]);
      return Usage();
    }
    return Entropy(argv[2], chunk);
  }
  if (cmd == "bench") {
    if (argc < 3) {
      return Usage();
    }
    std::string sub = argv[2];
    if (sub == "list" || sub == "run" || sub == "validate") {
      // Forward the experiment-driver commands to the unified harness: the
      // experiments are linked into this binary too.
      std::vector<std::string> args(argv + 2, argv + argc);
      return cdpu::bench::BenchMain("cdpu_cli bench", args);
    }
    if (argc < 4) {
      return Usage();
    }
    uint64_t chunk = 0;
    TraceArgs trace_args;
    bool bad_flag = false;
    for (int i = 4; i < argc; ++i) {
      std::string arg = argv[i];
      if (trace_args.Parse(arg, &bad_flag)) {
        if (bad_flag) {
          return 2;
        }
        continue;
      }
      // The only positional extra is the chunk size, and it must be numeric.
      if (i == 4 && arg.rfind("--", 0) != 0) {
        if (!ParseUint(arg.c_str(), &chunk)) {
          std::fprintf(stderr, "bad chunk size: %s\n", arg.c_str());
          return Usage();
        }
        continue;
      }
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage();
    }
    return Bench(argv[2], argv[3], chunk, trace_args);
  }
  if (cmd == "offload") {
    if (argc < 4) {
      return Usage();
    }
    return Offload(argv[2], argv[3], argc, argv, 4);
  }
  if (cmd == "serve") {
    return Serve(argc, argv, 2);
  }
  if (cmd == "client") {
    return Client(argc, argv, 2);
  }
  if (cmd == "stats") {
    return Stats(argc, argv, 2);
  }
  if (cmd == "top") {
    return Top(argc, argv, 2);
  }
  if (cmd != "compress" && cmd != "decompress") {
    return Usage();
  }
  if (argc != 5) {
    return Usage();
  }

  std::unique_ptr<cdpu::Codec> codec = cdpu::MakeCodec(argv[2]);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", argv[2]);
    return 2;
  }
  ByteVec in;
  if (!ReadFile(argv[3], &in)) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 1;
  }
  ByteVec out;
  auto r = cmd == "compress" ? codec->Compress(in, &out) : codec->Decompress(in, &out);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", cmd.c_str(), r.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(argv[4], out)) {
    std::fprintf(stderr, "cannot write %s\n", argv[4]);
    return 1;
  }
  std::printf("%s: %zu -> %zu bytes (%.1f%%)\n", cmd.c_str(), in.size(), out.size(),
              in.empty() ? 0.0 : 100.0 * static_cast<double>(out.size()) / in.size());
  return 0;
}
