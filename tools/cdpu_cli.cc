// cdpu_cli — command-line front end for the codec suite, in the spirit of
// the QATzip utility the paper benchmarks with.
//
//   cdpu_cli compress   <codec> <in> <out>     one-shot file compression
//   cdpu_cli decompress <codec> <in> <out>     inverse
//   cdpu_cli bench      <codec> <in> [chunk]   per-chunk ratio + speed
//   cdpu_cli entropy    <in> [chunk]           Shannon entropy profile
//   cdpu_cli list                              available codecs
//
// Codecs: deflate[-N], gzip[-N], zstd[-N], lz4, snappy, dpzip.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/codecs/codec.h"
#include "src/codecs/entropy.h"
#include "src/core/dpzip_codec.h"

namespace {

using cdpu::ByteSpan;
using cdpu::ByteVec;

bool ReadFile(const std::string& path, ByteVec* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  out->assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  return true;
}

bool WriteFile(const std::string& path, const ByteVec& data) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return false;
  }
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size()));
  return out.good();
}

int Usage() {
  std::fprintf(stderr,
               "usage: cdpu_cli compress|decompress <codec> <in> <out>\n"
               "       cdpu_cli bench <codec> <in> [chunk_bytes]\n"
               "       cdpu_cli entropy <in> [chunk_bytes]\n"
               "       cdpu_cli list\n");
  return 2;
}

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Bench(const std::string& codec_name, const std::string& path, size_t chunk) {
  std::unique_ptr<cdpu::Codec> codec = cdpu::MakeCodec(codec_name);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", codec_name.c_str());
    return 2;
  }
  ByteVec data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  if (chunk == 0 || chunk > data.size()) {
    chunk = data.size();
  }

  uint64_t in_bytes = 0;
  uint64_t out_bytes = 0;
  double c_seconds = 0;
  double d_seconds = 0;
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    ByteSpan span(data.data() + off, chunk);
    ByteVec compressed;
    double t0 = NowSeconds();
    auto c = codec->Compress(span, &compressed);
    double t1 = NowSeconds();
    if (!c.ok()) {
      std::fprintf(stderr, "compress failed: %s\n", c.status().ToString().c_str());
      return 1;
    }
    ByteVec restored;
    double t2 = NowSeconds();
    auto d = codec->Decompress(compressed, &restored);
    double t3 = NowSeconds();
    if (!d.ok() || !std::equal(restored.begin(), restored.end(), span.begin())) {
      std::fprintf(stderr, "round-trip FAILED at offset %zu\n", off);
      return 1;
    }
    in_bytes += chunk;
    out_bytes += compressed.size();
    c_seconds += t1 - t0;
    d_seconds += t3 - t2;
  }
  std::printf("%s on %s (%zu-byte chunks):\n", codec->name().c_str(), path.c_str(), chunk);
  std::printf("  ratio       %.1f%%\n", 100.0 * static_cast<double>(out_bytes) /
                                            static_cast<double>(in_bytes));
  std::printf("  compress    %.1f MB/s\n",
              static_cast<double>(in_bytes) / 1e6 / c_seconds);
  std::printf("  decompress  %.1f MB/s\n",
              static_cast<double>(in_bytes) / 1e6 / d_seconds);
  return 0;
}

int Entropy(const std::string& path, size_t chunk) {
  ByteVec data;
  if (!ReadFile(path, &data)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  if (chunk == 0 || chunk > data.size()) {
    chunk = data.size();
  }
  std::printf("offset        H (bits/byte)\n");
  for (size_t off = 0; off + chunk <= data.size(); off += chunk) {
    std::printf("%-12zu  %.3f\n", off,
                cdpu::ShannonEntropy(ByteSpan(data.data() + off, chunk)));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  cdpu::DpzipCodec::RegisterWithFactory();
  if (argc < 2) {
    return Usage();
  }
  std::string cmd = argv[1];

  if (cmd == "list") {
    std::printf("deflate[-1|6|9] gzip[-1|6|9] zstd[-1..12] lz4 snappy dpzip\n");
    return 0;
  }
  if (cmd == "entropy") {
    if (argc < 3) {
      return Usage();
    }
    return Entropy(argv[2], argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 0);
  }
  if (cmd == "bench") {
    if (argc < 4) {
      return Usage();
    }
    return Bench(argv[2], argv[3], argc > 4 ? std::strtoull(argv[4], nullptr, 10) : 0);
  }
  if (cmd != "compress" && cmd != "decompress") {
    return Usage();
  }
  if (argc != 5) {
    return Usage();
  }

  std::unique_ptr<cdpu::Codec> codec = cdpu::MakeCodec(argv[2]);
  if (codec == nullptr) {
    std::fprintf(stderr, "unknown codec: %s\n", argv[2]);
    return 2;
  }
  ByteVec in;
  if (!ReadFile(argv[3], &in)) {
    std::fprintf(stderr, "cannot read %s\n", argv[3]);
    return 1;
  }
  ByteVec out;
  auto r = cmd == "compress" ? codec->Compress(in, &out) : codec->Decompress(in, &out);
  if (!r.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", cmd.c_str(), r.status().ToString().c_str());
    return 1;
  }
  if (!WriteFile(argv[4], out)) {
    std::fprintf(stderr, "cannot write %s\n", argv[4]);
    return 1;
  }
  std::printf("%s: %zu -> %zu bytes (%.1f%%)\n", cmd.c_str(), in.size(), out.size(),
              in.empty() ? 0.0 : 100.0 * static_cast<double>(out.size()) / in.size());
  return 0;
}
