// CI perf-regression gate: compares a candidate BENCH_<name>.json against a
// committed baseline and exits non-zero when a gated metric regressed.
//
//   bench_compare <baseline.json> <candidate.json> [--markdown=PATH]
//
// Exit codes: 0 = within tolerance, 1 = regression (or gated metric missing
// from the candidate), 2 = usage / unreadable / malformed input.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "tools/bench_compare_lib.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: bench_compare <baseline.json> <candidate.json> "
               "[--markdown=PATH]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string baseline;
  std::string candidate;
  std::string markdown_path;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--markdown=", 0) == 0) {
      markdown_path = arg.substr(std::strlen("--markdown="));
      if (markdown_path.empty()) {
        return Usage();
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "bench_compare: unknown flag %s\n", arg.c_str());
      return Usage();
    } else if (baseline.empty()) {
      baseline = arg;
    } else if (candidate.empty()) {
      candidate = arg;
    } else {
      return Usage();
    }
  }
  if (baseline.empty() || candidate.empty()) {
    return Usage();
  }

  cdpu::Result<cdpu::tools::CompareReport> report =
      cdpu::tools::CompareBenchFiles(baseline, candidate);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    return 2;
  }
  std::fputs(cdpu::tools::RenderHuman(*report).c_str(), stdout);
  if (!markdown_path.empty()) {
    std::ofstream out(markdown_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "bench_compare: cannot write %s\n", markdown_path.c_str());
      return 2;
    }
    out << cdpu::tools::RenderMarkdown(*report);
  }
  return report->pass ? 0 : 1;
}
