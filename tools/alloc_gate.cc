// alloc_gate: CI gate over the steady-state allocation metric (ISSUE 8).
// Parses a BENCH_<name>.json document emitted by the experiment harness and
// asserts that every gauge named "*.allocs_per_request" whose key matches
// the row selector stays at or below the floor. A real JSON walk, not a
// grep: a renamed or silently missing metric fails the gate instead of
// passing vacuously.
//
//   alloc_gate <BENCH_json> [--match=<substr>] [--floor=<max>]
//
// Defaults gate the 4 KiB rows (--match=.p4K.) at the steady-state floor of
// 1.0 allocator touches per request. Exit 0 = all matched rows hold, 2 =
// usage/parse error, 1 = gate violated or no row matched.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace {

constexpr const char* kMetricSuffix = ".allocs_per_request";

int Usage() {
  std::fprintf(stderr,
               "usage: alloc_gate <BENCH_json> [--match=<substr>] [--floor=<max>]\n"
               "  gates every '*.allocs_per_request' gauge whose name contains\n"
               "  <substr> (default '.p4K.') at <= <max> (default 1.0)\n");
  return 2;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() && s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  std::string match = ".p4K.";
  double floor = 1.0;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--match=", 0) == 0) {
      match = arg.substr(8);
    } else if (arg.rfind("--floor=", 0) == 0) {
      char* end = nullptr;
      floor = std::strtod(arg.c_str() + 8, &end);
      if (end == nullptr || *end != '\0') {
        std::fprintf(stderr, "alloc_gate: bad --floor value: %s\n", arg.c_str());
        return 2;
      }
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "alloc_gate: unknown flag: %s\n", arg.c_str());
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) {
    return Usage();
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "alloc_gate: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  cdpu::Result<cdpu::obs::Json> parsed = cdpu::obs::Json::Parse(text.str());
  if (!parsed.ok()) {
    std::fprintf(stderr, "alloc_gate: %s: %s\n", path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const cdpu::obs::Json& doc = parsed.value();
  const cdpu::obs::Json* metrics = doc.Find("metrics");
  const cdpu::obs::Json* gauges =
      metrics != nullptr && metrics->is_object() ? metrics->Find("gauges") : nullptr;
  if (gauges == nullptr || !gauges->is_object()) {
    std::fprintf(stderr, "alloc_gate: %s has no metrics.gauges object\n", path.c_str());
    return 2;
  }

  size_t matched = 0;
  size_t violations = 0;
  for (const auto& [name, value] : gauges->members()) {
    if (!EndsWith(name, kMetricSuffix) || name.find(match) == std::string::npos) {
      continue;
    }
    if (!value.is_number()) {
      std::fprintf(stderr, "alloc_gate: FAIL %s is not numeric\n", name.c_str());
      ++violations;
      continue;
    }
    ++matched;
    const double v = value.AsDouble();
    const bool ok = v <= floor;
    std::printf("alloc_gate: %-4s %-48s %8.3f (floor %.3f)\n", ok ? "ok" : "FAIL",
                name.c_str(), v, floor);
    if (!ok) {
      ++violations;
    }
  }

  if (matched == 0) {
    std::fprintf(stderr,
                 "alloc_gate: no gauge matching '*%s' with '%s' in %s — the metric was\n"
                 "renamed or dropped; that fails the gate rather than passing it\n",
                 kMetricSuffix, match.c_str(), path.c_str());
    return 1;
  }
  if (violations > 0) {
    std::fprintf(stderr, "alloc_gate: %zu of %zu gated rows above the floor\n", violations,
                 matched);
    return 1;
  }
  std::printf("alloc_gate: %zu rows at or below the steady-state floor\n", matched);
  return 0;
}
