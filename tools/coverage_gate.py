#!/usr/bin/env python3
"""Line-coverage gate for the runtime + service layers (ISSUE 7 satellite).

Consumes the .gcda files left behind by a CDPU_COVERAGE=ON build after a
full ctest run, unions line coverage across translation units with
`gcov --json-format --stdout`, and renders a per-file markdown summary.
The gate fails (exit 1) when the combined line coverage of src/runtime +
src/svc + src/adapt + src/obs/hist.* drops below the floor committed in
tools/coverage_floor.txt. The hist files ride along (ISSUE 10) because the
always-on histograms sit on every hot path the other gated layers exercise.

Usage:
  python3 tools/coverage_gate.py --build-dir build-cov \
      [--floor-file tools/coverage_floor.txt] [--summary-out summary.md] \
      [--update-floor]

No third-party dependencies: everything is stdlib + the gcov binary that
ships with gcc. --update-floor rewrites the floor file from the measured
value minus a 2-point noise allowance; run it locally when new suites
legitimately raise coverage, and commit the result.
"""

import argparse
import json
import os
import re
import subprocess
import sys

GATED_PREFIXES = ("src/runtime/", "src/svc/", "src/adapt/", "src/obs/hist.")
FLOOR_SLACK = 2.0  # points below measured when --update-floor rewrites


def find_gcda(build_dir):
    for root, _dirs, files in os.walk(build_dir):
        for name in files:
            if name.endswith(".gcda"):
                yield os.path.join(root, name)


def parse_json_stream(text):
    """gcov --stdout may concatenate several JSON documents."""
    decoder = json.JSONDecoder()
    pos = 0
    while pos < len(text):
        while pos < len(text) and text[pos] in " \t\r\n":
            pos += 1
        if pos >= len(text):
            break
        try:
            doc, end = decoder.raw_decode(text, pos)
        except json.JSONDecodeError:
            break
        yield doc
        pos = end


def gated_path(raw):
    """Maps a gcov-reported path onto its repo-relative src/... form."""
    norm = os.path.normpath(raw).replace(os.sep, "/")
    idx = norm.find("src/")
    if idx < 0:
        return None
    rel = norm[idx:]
    return rel if rel.startswith(GATED_PREFIXES) else None


def collect(build_dir):
    """file -> {line -> hit_count (max across TUs)}."""
    coverage = {}
    gcda_files = list(find_gcda(build_dir))
    if not gcda_files:
        sys.exit(f"no .gcda files under {build_dir} — was the build configured "
                 "with -DCDPU_COVERAGE=ON and did ctest run?")
    for gcda in gcda_files:
        proc = subprocess.run(
            ["gcov", "--json-format", "--stdout", os.path.basename(gcda)],
            cwd=os.path.dirname(gcda), capture_output=True, text=True)
        if proc.returncode != 0:
            print(f"warning: gcov failed on {gcda}: {proc.stderr.strip()}",
                  file=sys.stderr)
            continue
        for doc in parse_json_stream(proc.stdout):
            for f in doc.get("files", []):
                rel = gated_path(f.get("file", ""))
                if rel is None:
                    continue
                lines = coverage.setdefault(rel, {})
                for line in f.get("lines", []):
                    no = line.get("line_number")
                    count = line.get("count", 0)
                    if no is None:
                        continue
                    lines[no] = max(lines.get(no, 0), count)
    return coverage


def summarize(coverage):
    rows = []
    total_lines = total_covered = 0
    for path in sorted(coverage):
        lines = coverage[path]
        n = len(lines)
        covered = sum(1 for c in lines.values() if c > 0)
        total_lines += n
        total_covered += covered
        rows.append((path, n, covered, 100.0 * covered / n if n else 100.0))
    overall = 100.0 * total_covered / total_lines if total_lines else 0.0
    return rows, total_lines, total_covered, overall


def render_markdown(rows, total_lines, total_covered, overall, floor):
    out = ["## Coverage gate: src/runtime + src/svc + src/adapt + src/obs/hist.*",
           "",
           "| file | lines | covered | % |",
           "| --- | ---: | ---: | ---: |"]
    for path, n, covered, pct in rows:
        out.append(f"| {path} | {n} | {covered} | {pct:.1f} |")
    out.append(f"| **total** | **{total_lines}** | **{total_covered}** "
               f"| **{overall:.1f}** |")
    out.append("")
    verdict = "meets" if overall >= floor else "is BELOW"
    out.append(f"Line coverage **{overall:.1f}%** {verdict} the committed "
               f"floor of **{floor:.1f}%** (tools/coverage_floor.txt).")
    out.append("")
    return "\n".join(out)


def read_floor(path):
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            match = re.match(r"^(\d+(?:\.\d+)?)$", line)
            if match:
                return float(match.group(1))
    sys.exit(f"no floor value found in {path}")


def main():
    ap = argparse.ArgumentParser(description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--floor-file", default="tools/coverage_floor.txt")
    ap.add_argument("--summary-out", default=None,
                    help="append the markdown summary to this file "
                         "(e.g. $GITHUB_STEP_SUMMARY)")
    ap.add_argument("--update-floor", action="store_true",
                    help=f"rewrite the floor file to measured - {FLOOR_SLACK} points")
    args = ap.parse_args()

    coverage = collect(args.build_dir)
    if not coverage:
        sys.exit("no coverage data for src/runtime, src/svc, src/adapt or "
                 "src/obs/hist.* — did the gated tests run?")
    rows, total_lines, total_covered, overall = summarize(coverage)

    if args.update_floor:
        floor = max(0.0, round(overall - FLOOR_SLACK, 1))
        with open(args.floor_file, "w") as f:
            f.write("# Line-coverage floor for src/runtime + src/svc + src/adapt\n"
                    "# + src/obs/hist.*,\n"
                    "# enforced by tools/coverage_gate.py in the CI coverage job.\n"
                    "# Regenerate with\n"
                    "#   python3 tools/coverage_gate.py --build-dir <cov-build> "
                    "--update-floor\n"
                    "# after a full ctest run when new suites raise coverage.\n"
                    f"{floor}\n")
        print(f"floor updated: {floor:.1f} (measured {overall:.1f})")

    floor = read_floor(args.floor_file)
    markdown = render_markdown(rows, total_lines, total_covered, overall, floor)
    print(markdown)
    if args.summary_out:
        with open(args.summary_out, "a") as f:
            f.write(markdown + "\n")

    if overall < floor:
        print(f"FAIL: {overall:.2f}% < floor {floor:.2f}%", file=sys.stderr)
        return 1
    print(f"OK: {overall:.2f}% >= floor {floor:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())
