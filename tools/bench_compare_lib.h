// Perf-regression comparison between two BENCH_<name>.json files (the
// schema-versioned output of the experiment harness). The gate is
// name-driven: throughput gauges (ending in "mbps"/"gbps") must not drop
// more than their tolerance below the baseline, tail-latency gauges
// (containing "p99") must not inflate past theirs; every other metric is
// reported but never gates. A gated metric present in the baseline but
// missing from the candidate fails the comparison — silently losing a
// metric is indistinguishable from regressing it.

#ifndef TOOLS_BENCH_COMPARE_LIB_H_
#define TOOLS_BENCH_COMPARE_LIB_H_

#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/json.h"

namespace cdpu {
namespace tools {

enum class MetricDirection : uint8_t {
  kHigherBetter,    // throughput: regression = drop below baseline
  kLowerBetter,     // tail latency: regression = inflation above baseline
  kInformational,   // reported, never gated
};

struct MetricPolicy {
  MetricDirection direction = MetricDirection::kInformational;
  double tolerance = 0;  // allowed adverse relative change, e.g. 0.15 = 15%
};

// Name-based classification. Throughput: name ends with "mbps" or contains
// "gbps" (15% tolerance). Tail latency: name contains "p99" (20%).
MetricPolicy ClassifyMetric(const std::string& name);

enum class Verdict : uint8_t {
  kOk,       // within tolerance (or informational)
  kRegressed,
  kMissing,  // gated metric present in baseline, absent in candidate
  kNew,      // metric only in candidate; informational
};

const char* VerdictName(Verdict v);

struct MetricComparison {
  std::string name;
  double baseline = 0;
  double candidate = 0;
  double delta_pct = 0;  // (candidate - baseline) / baseline * 100
  MetricPolicy policy;
  Verdict verdict = Verdict::kOk;
};

struct CompareReport {
  std::string experiment;  // from the baseline document
  std::vector<MetricComparison> metrics;  // baseline order, then kNew extras
  bool pass = true;

  size_t regressions() const;
};

// Compares the "metrics"/"gauges" sections of two parsed BENCH documents.
// The baseline defines the gated set; schema_version must match.
Result<CompareReport> CompareBenchDocs(const obs::Json& baseline,
                                       const obs::Json& candidate);

// File front-end: reads + parses both paths, then CompareBenchDocs.
Result<CompareReport> CompareBenchFiles(const std::string& baseline_path,
                                        const std::string& candidate_path);

// Human table (one row per metric, regressions flagged).
std::string RenderHuman(const CompareReport& report);

// GitHub-flavoured markdown table for the CI job summary.
std::string RenderMarkdown(const CompareReport& report);

}  // namespace tools
}  // namespace cdpu

#endif  // TOOLS_BENCH_COMPARE_LIB_H_
