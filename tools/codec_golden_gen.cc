// Regenerates the committed lz4/snappy golden vectors (tests/golden/
// <codec>/*.bin) from the fixed corpus in tests/golden/codec_corpus.h. Run
// this ONLY when an encoder's byte output changes on purpose, then commit
// the new vectors together with the encoder change:
//
//   build/tools/codec_golden_gen tests/golden
//
// Each vector is verified to round-trip before it is written, so the tool
// can never commit a vector the decoder rejects.

#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "src/codecs/codec.h"
#include "tests/golden/codec_corpus.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <golden-dir>  (normally tests/golden)\n", argv[0]);
    return 2;
  }
  const std::string dir = argv[1];
  int failures = 0;
  for (const std::string& codec_name : cdpu::golden::GoldenCodecs()) {
    std::unique_ptr<cdpu::Codec> codec = cdpu::MakeCodec(codec_name);
    if (codec == nullptr) {
      std::fprintf(stderr, "%s: MakeCodec failed\n", codec_name.c_str());
      ++failures;
      continue;
    }
    for (const cdpu::golden::CodecGoldenCase& c : cdpu::golden::CodecCorpus()) {
      std::vector<uint8_t> input = cdpu::golden::GenerateCodecInput(c);
      cdpu::ByteVec compressed;
      cdpu::Result<size_t> cr = codec->Compress(input, &compressed);
      if (!cr.ok()) {
        std::fprintf(stderr, "%s/%s: compress failed: %s\n", codec_name.c_str(), c.name,
                     cr.status().ToString().c_str());
        ++failures;
        continue;
      }
      cdpu::ByteVec roundtrip;
      cdpu::Result<size_t> dr = codec->Decompress(compressed, &roundtrip);
      if (!dr.ok() || roundtrip != input) {
        std::fprintf(stderr, "%s/%s: vector does not round-trip, refusing to write\n",
                     codec_name.c_str(), c.name);
        ++failures;
        continue;
      }
      const std::string path = dir + "/" + codec_name + "/" + c.name + ".bin";
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "%s/%s: cannot open %s\n", codec_name.c_str(), c.name,
                     path.c_str());
        ++failures;
        continue;
      }
      out.write(reinterpret_cast<const char*>(compressed.data()),
                static_cast<std::streamsize>(compressed.size()));
      out.close();
      std::printf("%-8s %-20s %6zu -> %6zu bytes  %s\n", codec_name.c_str(), c.name,
                  input.size(), compressed.size(), path.c_str());
    }
  }
  if (failures > 0) {
    std::fprintf(stderr, "%d vector(s) failed\n", failures);
    return 1;
  }
  return 0;
}
