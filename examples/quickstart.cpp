// Quickstart: compress and decompress a buffer with the DPZip codec, look
// at the hardware-model statistics, and convert them to latency with the
// cycle-level pipeline model.
//
// Build: cmake -B build -G Ninja && cmake --build build
// Run:   ./build/examples/quickstart

#include <cstdio>

#include "src/codecs/entropy.h"
#include "src/core/dpzip_codec.h"
#include "src/core/pipeline_model.h"
#include "src/workload/datagen.h"

int main() {
  using namespace cdpu;

  // A 4 KB "flash page" of database-table-like data.
  std::vector<uint8_t> page = GenerateDbTableLike(4096, /*seed=*/1);
  std::printf("input: %zu bytes, shannon entropy %.2f bits/byte\n", page.size(),
              ShannonEntropy(page));

  // Compress with DPZip: hardware-model LZ77 + 11-bit dynamic Huffman + FSE.
  DpzipCodec codec;
  ByteVec compressed;
  Result<size_t> c = codec.Compress(page, &compressed);
  if (!c.ok()) {
    std::printf("compress failed: %s\n", c.status().ToString().c_str());
    return 1;
  }
  const DpzipBlockStats& stats = codec.last_stats();
  std::printf("compressed: %zu bytes (ratio %.1f%%)\n", *c,
              100.0 * static_cast<double>(*c) / static_cast<double>(page.size()));
  std::printf("  lz77: %llu matches covering %.0f%% of input, %llu stage-2 compares\n",
              static_cast<unsigned long long>(stats.lz77.matches_emitted),
              stats.lz77.MatchCoverage() * 100,
              static_cast<unsigned long long>(stats.lz77.candidate_compares));
  std::printf("  huffman: %u clipped leaves, schedule %u cycles (bound 274)\n",
              stats.huffman.clipped_leaves, stats.huffman.schedule_cycles);

  // What would this cost in the ASIC? 8 B/cycle at 1 GHz.
  DpzipPipelineModel model;
  DpzipTiming tc = model.CompressLatency(stats);
  std::printf("modelled compress latency: %llu ns (%llu cycles, %llu stalls)\n",
              static_cast<unsigned long long>(tc.nanos),
              static_cast<unsigned long long>(tc.cycles),
              static_cast<unsigned long long>(tc.stall_cycles));

  // Round-trip.
  ByteVec restored;
  Result<size_t> d = codec.Decompress(compressed, &restored);
  if (!d.ok() || restored != page) {
    std::printf("round trip FAILED\n");
    return 1;
  }
  DpzipTiming td = model.DecompressLatency(codec.last_stats());
  std::printf("modelled decompress latency: %llu ns\n",
              static_cast<unsigned long long>(td.nanos));
  std::printf("round trip OK\n");
  return 0;
}
