// Scenario: hyperscale fleet cost projection (paper Finding 12's claim that
// DPZip/QAT cut server electricity costs >50% vs CPU Deflate at equal
// throughput). Sizes a compression fleet for a target aggregate rate and
// prices the annual energy per scheme.
//
// Run: ./build/examples/fleet_tco

#include <cstdio>

#include "src/hw/device_configs.h"
#include "src/hw/power.h"

int main() {
  using namespace cdpu;

  constexpr double kTargetGbps = 100.0;     // fleet compression demand
  constexpr double kUsdPerKwh = 0.10;
  constexpr double kHoursPerYear = 8760.0;
  constexpr double kServerIdleW = 350.0;

  struct Option {
    const char* name;
    CdpuConfig cfg;
    uint32_t threads;
    double cpu_util;        // host CPU burned per device while compressing
    uint32_t per_server;    // devices mountable per server
  };
  std::vector<Option> options = {
      {"cpu-deflate (88 thr)", CpuSoftwareConfig("deflate"), 88, 1.0, 1},
      {"qat-8970", Qat8970Config(), 64, 0.16, 4},
      {"qat-4xxx", Qat4xxxConfig(), 64, 0.14, 2},
      {"dp-csd (dpzip)", DpzipCdpuConfig(), 16, 0.03, 24},
  };

  std::printf("Fleet sizing for %.0f GB/s aggregate 4 KB compression:\n\n", kTargetGbps);
  std::printf("%-22s %-10s %-9s %-9s %-11s %-12s\n", "scheme", "GB/s/dev", "devices",
              "servers", "net kW", "USD/yr");
  std::printf("%s\n", std::string(76, '-').c_str());

  double cpu_cost = 0;
  for (const Option& o : options) {
    CdpuDevice dev(o.cfg);
    double per_dev =
        dev.RunClosedLoop(CdpuOp::kCompress, 20000, 4096, 0.45, o.threads).gbps;
    uint32_t devices = static_cast<uint32_t>(kTargetGbps / per_dev + 0.999);
    uint32_t servers = (devices + o.per_server - 1) / o.per_server;

    // Net power: devices at full tilt + the host CPU share they burn +
    // the servers' idle floor.
    double device_w = devices * (o.cfg.active_power_w - o.cfg.idle_power_w);
    double cpu_w = devices * o.cpu_util * 3.0 * 88;  // 3 W per busy thread
    double idle_w = servers * kServerIdleW;
    double total_kw = (device_w + cpu_w + idle_w) / 1000.0;
    double usd = total_kw * kHoursPerYear * kUsdPerKwh;
    if (o.cfg.placement == Placement::kCpuSoftware) {
      cpu_cost = usd;
    }
    std::printf("%-22s %-10.2f %-9u %-9u %-11.1f %-12.0f\n", o.name, per_dev, devices,
                servers, total_kw, usd);
  }

  std::printf("\nRelative to CPU Deflate, the hardware options cut the annual\n"
              "electricity bill by 50%%+ at the same aggregate throughput — the\n"
              "operational-savings claim of Finding 12. DP-CSD also rides along\n"
              "on drives the fleet already needs, so its marginal server count\n"
              "is the smallest.\n");
  (void)cpu_cost;
  return 0;
}
