// Scenario: transparent in-storage compression expanding effective SSD
// capacity (paper §4.2). Writes a mixed dataset to a DP-CSD and to a plain
// NVMe SSD, then compares physical footprint, effective capacity gain,
// write amplification and IO latency — the numbers an operator would check
// before deploying compression-enabled drives.
//
// Run: ./build/examples/csd_capacity

#include <cstdio>

#include "src/ssd/scheme.h"
#include "src/workload/datagen.h"

int main() {
  using namespace cdpu;

  constexpr uint64_t kPages = 2048;  // 8 MiB of host data

  for (CompressionScheme scheme : {CompressionScheme::kOff, CompressionScheme::kDpCsd}) {
    SimSsd ssd(MakeSchemeSsdConfig(scheme, 16 * 1024));
    SimNanos t = 0;
    double write_us = 0;

    // Mixed fleet-like data: text, DB tables, binaries, images.
    std::vector<CorpusFile> corpus = SilesiaLikeCorpus(kPages * 4096 / 12, 99);
    uint64_t lpn = 0;
    for (const CorpusFile& f : corpus) {
      for (size_t off = 0; off + 4096 <= f.data.size() && lpn < kPages; off += 4096) {
        Result<SsdIoResult> w = ssd.Write(lpn++, ByteSpan(f.data.data() + off, 4096), t);
        if (!w.ok()) {
          std::printf("write failed: %s\n", w.status().ToString().c_str());
          return 1;
        }
        write_us += static_cast<double>(w->completion - t) / 1e3;
        t = w->completion;
      }
    }

    // Read a sample back and verify integrity.
    double read_us = 0;
    for (uint64_t p = 0; p < lpn; p += 64) {
      ByteVec out;
      Result<SsdIoResult> r = ssd.Read(p, &out, t);
      if (!r.ok()) {
        std::printf("read failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      read_us += static_cast<double>(r->completion - t) / 1e3;
      t = r->completion;
    }

    std::printf("\n=== %s ===\n", ssd.config().name.c_str());
    std::printf("host data written:     %.1f MiB\n",
                static_cast<double>(ssd.ftl().host_bytes_written()) / (1 << 20));
    std::printf("flash bytes programmed:%.1f MiB (WA %.2f)\n",
                static_cast<double>(ssd.ftl().flash_bytes_programmed()) / (1 << 20),
                ssd.ftl().WriteAmplification());
    std::printf("physical space ratio:  %.1f%%\n", ssd.ftl().PhysicalSpaceRatio() * 100);
    std::printf("effective capacity:    %.2fx\n", ssd.EffectiveCapacityGain());
    std::printf("compressed/bypassed:   %llu / %llu pages\n",
                static_cast<unsigned long long>(ssd.compressed_pages()),
                static_cast<unsigned long long>(ssd.bypass_pages()));
    std::printf("mean write latency:    %.2f us\n", write_us / static_cast<double>(lpn));
    std::printf("mean read latency:     %.2f us\n", read_us / (static_cast<double>(lpn) / 64));
  }

  std::printf("\nDP-CSD stores the same host data in roughly half the flash, with\n"
              "write latency still in the buffered sub-10us class (paper §5.2.3).\n");
  return 0;
}
