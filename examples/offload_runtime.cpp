// Offload runtime walkthrough: how client threads hand (de)compression work
// to a modelled CDPU through thread-safe queue pairs.
//
//   1. Real byte work + device timing: four client threads compress corpus
//      files through queue pairs (futures for completion), then decompress
//      and verify via a completion callback.
//   2. Model-only closed loop: chain explicit simulated arrivals to measure
//      what the device would sustain, without moving real bytes.
//
// Build: cmake --build build --target offload_runtime
// Run:   ./build/examples/offload_runtime

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/workload/datagen.h"

using namespace cdpu;

int main() {
  // --- Part 1: real codec work driven through the runtime -------------------
  RuntimeOptions opts;
  opts.device = Qat8970Config();  // 3 engines, 64-descriptor ceiling
  opts.codec = "zstd";            // engines run MiniZstd on the payloads
  opts.queue_pairs = 4;
  opts.batch_size = 8;
  OffloadRuntime runtime(opts);

  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(64 * 1024);
  std::atomic<uint64_t> verified{0};
  std::atomic<uint64_t> mismatched{0};

  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (size_t i = t; i < corpus.size(); i += 4) {
        const std::vector<uint8_t>& original = corpus[i].data;

        OffloadRequest compress;
        compress.op = CdpuOp::kCompress;
        compress.input = original;
        compress.queue_pair = t;  // one queue pair per client thread
        OffloadResult cres = runtime.Submit(std::move(compress)).get();
        if (!cres.status.ok()) {
          ++mismatched;
          continue;
        }
        std::printf("  [qp%u] %-14s %6zu -> %6zu bytes (ratio %.2f, device %.1f us)\n", t,
                    corpus[i].name.c_str(), original.size(), cres.output.size(), cres.ratio,
                    static_cast<double>(cres.device_latency_ns) / 1e3);

        // Completion callbacks run on the reaper thread.
        OffloadRequest decompress;
        decompress.op = CdpuOp::kDecompress;
        decompress.input = cres.output;
        decompress.ratio_hint = cres.ratio;
        decompress.queue_pair = t;
        decompress.callback = [&, i](const OffloadResult& dres) {
          if (dres.status.ok() && dres.output == corpus[i].data) {
            ++verified;
          } else {
            ++mismatched;
          }
        };
        runtime.Submit(std::move(decompress)).get();
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();

  RuntimeStats stats = runtime.Snapshot();
  std::printf("\nround-trips verified: %llu (%llu mismatched)\n",
              static_cast<unsigned long long>(verified.load()),
              static_cast<unsigned long long>(mismatched.load()));
  std::printf("max in-flight: %llu of %u descriptor slots; %llu doorbells\n",
              static_cast<unsigned long long>(stats.max_inflight), opts.device.queue_limit,
              static_cast<unsigned long long>(stats.doorbells));
  std::printf("device-model latency: mean %.1f us | wall latency: mean %.1f us\n",
              stats.device_latency_us.mean(), stats.wall_latency_us.mean());
  runtime.Shutdown();

  // --- Part 2: model-only closed loop in simulated time ---------------------
  RuntimeOptions model_opts;
  model_opts.device = Qat8970Config();
  model_opts.codec = "";  // no byte work: timing only
  model_opts.queue_pairs = 8;
  model_opts.batch_size = 1;
  OffloadRuntime model_runtime(model_opts);

  constexpr uint32_t kThreads = 64;  // enough to saturate the 64-slot ceiling
  std::vector<std::thread> loaders;
  for (uint32_t t = 0; t < kThreads; ++t) {
    loaders.emplace_back([&, t] {
      SimNanos now = 0;
      for (int i = 0; i < 20; ++i) {
        OffloadRequest req;
        req.op = CdpuOp::kCompress;
        req.model_bytes = 65536;
        req.ratio_hint = 0.4;
        req.arrival = now;  // closed loop: next arrival = previous completion
        req.queue_pair = t % model_opts.queue_pairs;
        now = model_runtime.Submit(std::move(req)).get().sim_completion;
      }
    });
  }
  for (std::thread& l : loaders) {
    l.join();
  }
  model_runtime.Drain();

  RuntimeStats model_stats = model_runtime.Snapshot();
  std::printf("\nclosed loop, %u threads x 64 KB: %.2f GB/s simulated, "
              "%llu ceiling delays\n",
              kThreads, model_stats.sim_gbps(),
              static_cast<unsigned long long>(model_stats.ceiling_delays));
  return mismatched.load() == 0 ? 0 : 1;
}
