// Fault injection walkthrough: what the offload runtime's recovery policy
// looks like from a client's seat.
//
//   1. Flaky device: a seeded FaultPlan injects all four fault kinds at a
//      moderate rate while eight client threads round-trip corpus files.
//      Every job still succeeds — retries and the CPU fallback mask the
//      faults — and the stats show what recovery cost.
//   2. Dead device: verify mismatches at rate 1.0. After a few exhausted
//      jobs the health machine marks the device unhealthy, traffic cuts
//      over to the CPU fallback wholesale, and periodic re-probes keep
//      checking whether the device came back.
//
// Build: cmake --build build --target offload_faults
// Run:   ./build/examples/offload_faults

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "src/fault/fault_plan.h"
#include "src/hw/device_configs.h"
#include "src/runtime/offload_runtime.h"
#include "src/workload/datagen.h"

using namespace cdpu;

namespace {

// Round-trips every corpus file through the runtime from `threads` clients;
// returns the number of failed or corrupt round trips (should always be 0).
uint64_t DriveClients(OffloadRuntime& runtime, const std::vector<CorpusFile>& corpus,
                      uint32_t threads, int repeats) {
  std::atomic<uint64_t> bad{0};
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      for (int r = 0; r < repeats; ++r) {
        for (size_t i = t; i < corpus.size(); i += threads) {
          const std::vector<uint8_t>& original = corpus[i].data;
          OffloadRequest compress;
          compress.op = CdpuOp::kCompress;
          compress.input = original;
          compress.queue_pair = t % 4;
          OffloadResult cres = runtime.Submit(std::move(compress)).get();
          if (!cres.status.ok()) {
            ++bad;
            continue;
          }
          OffloadRequest decompress;
          decompress.op = CdpuOp::kDecompress;
          decompress.input = cres.output;
          decompress.ratio_hint = cres.ratio;
          decompress.queue_pair = t % 4;
          OffloadResult dres = runtime.Submit(std::move(decompress)).get();
          if (!dres.status.ok() || dres.output != original) {
            ++bad;
          }
        }
      }
    });
  }
  for (std::thread& c : clients) {
    c.join();
  }
  runtime.Drain();
  return bad.load();
}

void PrintFaultStats(const RuntimeStats& s) {
  std::printf("  faults injected: %llu (", static_cast<unsigned long long>(s.faults_injected));
  for (uint32_t k = 0; k < kNumFaultKinds; ++k) {
    std::printf("%s%s %llu", k == 0 ? "" : ", ", FaultKindName(static_cast<FaultKind>(k)),
                static_cast<unsigned long long>(s.faults_by_kind[k]));
  }
  std::printf(")\n");
  std::printf("  recovery: %llu retries, %llu CPU fallbacks\n",
              static_cast<unsigned long long>(s.retries),
              static_cast<unsigned long long>(s.fallbacks));
  std::printf("  health: %s, %llu degradations, %llu re-probes\n",
              s.device_healthy ? "healthy" : "degraded",
              static_cast<unsigned long long>(s.unhealthy_transitions),
              static_cast<unsigned long long>(s.reprobes));
}

}  // namespace

int main() {
  std::vector<CorpusFile> corpus = SilesiaLikeCorpus(32 * 1024);
  uint64_t total_bad = 0;

  // --- Part 1: flaky device — faults injected, recovery masks them ----------
  std::printf("Part 1: flaky device (all fault kinds at rate 0.1)\n");
  RuntimeOptions flaky;
  flaky.device = Qat8970Config();
  flaky.codec = "lz4";
  flaky.queue_pairs = 4;
  flaky.engine_threads = 4;
  flaky.fault_plan.seed = 42;
  flaky.fault_plan.SetAllRates(0.1);
  {
    OffloadRuntime runtime(flaky);
    uint64_t bad = DriveClients(runtime, corpus, 8, 4);
    runtime.Shutdown();
    RuntimeStats s = runtime.Snapshot();
    std::printf("  round trips: %llu jobs, %llu failed\n",
                static_cast<unsigned long long>(s.jobs_completed),
                static_cast<unsigned long long>(bad));
    PrintFaultStats(s);
    total_bad += bad;
  }

  // --- Part 2: dead device — graceful degradation to the CPU path -----------
  std::printf("\nPart 2: dead device (verify mismatch rate 1.0)\n");
  RuntimeOptions dead = flaky;
  dead.fault_plan = FaultPlan{};
  dead.fault_plan.seed = 43;
  dead.fault_plan.rate[static_cast<uint32_t>(FaultKind::kVerifyMismatch)] = 1.0;
  dead.reprobe_backoff_ns = 2 * 1000 * 1000;  // re-probe every 2 ms of wall time
  {
    OffloadRuntime runtime(dead);
    uint64_t bad = DriveClients(runtime, corpus, 8, 4);
    runtime.Shutdown();
    RuntimeStats s = runtime.Snapshot();
    std::printf("  round trips: %llu jobs, %llu failed — the device never\n"
                "  produced one good completion, yet every job finished\n",
                static_cast<unsigned long long>(s.jobs_completed),
                static_cast<unsigned long long>(bad));
    PrintFaultStats(s);
    total_bad += bad;
  }

  std::printf("\n%s\n", total_bad == 0 ? "all round trips verified"
                                       : "ERROR: some round trips failed");
  return total_bad == 0 ? 0 : 1;
}
