// Scenario: sizing a multi-tenant compression service (paper §5.5.2).
// Partitions a QAT-style device and a DP-CSD into 24 virtual functions,
// runs 24 closed-loop tenants on each, and prints the per-VM throughput
// distribution — showing why per-VF fair scheduling is a hard requirement
// for predictable multi-tenant operation (Finding 15).
//
// Run: ./build/examples/multitenant_isolation

#include <algorithm>
#include <cstdio>

#include "src/virt/sriov.h"

namespace {

void Histogram(const cdpu::MultiTenantResult& r) {
  double max_gbps = 0;
  for (const cdpu::TenantOutcome& t : r.tenants) {
    max_gbps = std::max(max_gbps, t.gbps);
  }
  for (const cdpu::TenantOutcome& t : r.tenants) {
    int bars = max_gbps > 0 ? static_cast<int>(t.gbps / max_gbps * 40) : 0;
    std::printf("  vm%02u %7.1f MB/s |%s\n", t.vm, t.gbps * 1000,
                std::string(static_cast<size_t>(bars), '#').c_str());
  }
}

}  // namespace

int main() {
  using namespace cdpu;

  SriovConfig qat;
  qat.name = "qat-4xxx (unarbitrated VFs)";
  qat.arbitration = VfArbitration::kUnarbitrated;
  qat.device_gbps = 4.3;

  SriovConfig dpcsd;
  dpcsd.name = "dp-csd (per-VF fair queueing)";
  dpcsd.arbitration = VfArbitration::kWeightedFair;
  dpcsd.device_gbps = 5.6;

  for (const SriovConfig& cfg : {qat, dpcsd}) {
    MultiTenantResult r = RunMultiTenant(cfg);
    std::printf("\n=== %s ===\n", cfg.name.c_str());
    std::printf("aggregate: %.2f GB/s across %zu VMs, CV %.2f%%\n", r.total_gbps,
                r.tenants.size(), r.cv_percent);
    Histogram(r);
  }

  std::printf("\nPaper: QAT write CVs exceed 50%% (80-89%% for reads) because the\n"
              "device drains VF rings without per-VF rate limiting; DP-CSD's\n"
              "front-end QoS keeps CV at 0.48%%, making it safe to sell per-tenant\n"
              "performance guarantees.\n");
  return 0;
}
