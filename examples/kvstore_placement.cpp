// Scenario: choosing a compression placement for an LSM database (the
// paper's RocksDB study, §5.3.1). Loads the same YCSB dataset under each of
// the five schemes and reports throughput, read latency, tree shape and
// storage footprint — the trade-off matrix of Findings 6-8.
//
// Run: ./build/examples/kvstore_placement

#include <cstdio>
#include <memory>

#include "src/kv/ycsb_runner.h"

int main() {
  using namespace cdpu;

  constexpr uint64_t kRecords = 1200;
  constexpr uint64_t kOps = 3000;
  constexpr uint32_t kThreads = 16;

  std::printf("%-12s %-10s %-12s %-10s %-12s %-12s\n", "scheme", "KOPS", "read us",
              "lsm depth", "logical MB", "stored MB");
  std::printf("%s\n", std::string(70, '-').c_str());

  for (CompressionScheme scheme :
       {CompressionScheme::kOff, CompressionScheme::kCpu, CompressionScheme::kQat8970,
        CompressionScheme::kQat4xxx, CompressionScheme::kDpCsd}) {
    auto ssd = std::make_unique<SimSsd>(MakeSchemeSsdConfig(scheme, 512 * 1024));
    LsmConfig cfg;
    cfg.memtable_bytes = 96 * 1024;
    cfg.sstable_data_bytes = 96 * 1024;
    LsmDb db(cfg, ssd.get(), MakeSchemeBackend(scheme));

    YcsbConfig ycfg;
    ycfg.workload = 'A';
    ycfg.record_count = kRecords;
    ycfg.value_size = 400;
    YcsbWorkload wl(ycfg);

    SimNanos clock = 0;
    Status load = YcsbLoad(&db, wl, &clock);
    if (!load.ok()) {
      std::printf("%-12s load failed: %s\n", SchemeName(scheme), load.ToString().c_str());
      continue;
    }
    Result<YcsbRunResult> run = YcsbRun(&db, &wl, kThreads, kOps, clock);
    if (!run.ok()) {
      std::printf("%-12s run failed: %s\n", SchemeName(scheme),
                  run.status().ToString().c_str());
      continue;
    }

    // Stored footprint: app-level file bytes for CPU/QAT; for DP-CSD the
    // SSD's internal ratio tells the real story.
    double logical_mb = static_cast<double>(db.TotalDataBytes()) / 1e6;
    double stored_mb = static_cast<double>(db.TotalFileBytes()) / 1e6;
    if (scheme == CompressionScheme::kDpCsd) {
      stored_mb *= ssd->ftl().PhysicalSpaceRatio();
    }
    std::printf("%-12s %-10.0f %-12.1f %-10d %-12.1f %-12.1f\n", SchemeName(scheme),
                run->kops, run->mean_read_latency_us, db.DepthUsed(), logical_mb, stored_mb);
  }

  std::printf("\nHow to read this: QAT compression packs SSTables denser (lower read\n"
              "latency, smaller files) but needs deep application integration; DP-CSD\n"
              "gets the space savings transparently at OFF-like throughput, paying\n"
              "only the unchanged logical layout on reads (Finding 8).\n");
  return 0;
}
