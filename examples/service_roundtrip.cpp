// Compression-as-a-service walkthrough: stand up the epoll service endpoint
// in-process, speak to it over a real TCP socket with the client library,
// and watch the admission controller push back when the offered load
// exceeds the device's in-flight budget.
//
//   1. Round trip: compress a generated payload over the wire, decompress
//      it back, and byte-compare — the service path must be lossless.
//   2. Codec menu: the same connection carries zstd, lz4 and snappy jobs;
//      each request names its codec, the runtime resolves it per job.
//   3. Backpressure: an admission ceiling of 2 with eight eager clients
//      turns the overflow into retryable BUSY responses, never queueing.
//
// Build: cmake --build build --target service_roundtrip
// Run:   ./build/examples/service_roundtrip

#include <cstdio>
#include <string>
#include <vector>

#include "src/hw/device_configs.h"
#include "src/svc/client.h"
#include "src/svc/loadgen.h"
#include "src/svc/server.h"
#include "src/workload/datagen.h"

using namespace cdpu;

int main() {
  svc::ServerOptions sopts;
  sopts.runtime.device = Qat8970Config();
  svc::ServiceServer server(sopts);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server: %s\n", started.ToString().c_str());
    return 1;
  }
  std::printf("service listening on 127.0.0.1:%u\n\n", server.port());

  // --- 1. One verified round trip over TCP. ---------------------------------
  svc::ClientOptions copts;
  copts.port = server.port();
  svc::ServiceClient client(copts);

  ByteVec payload = GenerateWithRatio(0.4, 256 * 1024, /*seed=*/42);
  svc::CallResult compressed = client.Compress("zstd-3", payload);
  if (!compressed.status.ok()) {
    std::fprintf(stderr, "compress: %s\n", compressed.status.ToString().c_str());
    return 1;
  }
  svc::CallResult restored = client.Decompress("zstd-3", compressed.output);
  bool lossless = restored.status.ok() && restored.output.size() == payload.size() &&
                  std::equal(restored.output.begin(), restored.output.end(), payload.begin());
  std::printf("round trip   %zu -> %zu -> %zu bytes  %s\n", payload.size(),
              compressed.output.size(), restored.output.size(),
              lossless ? "(bit-exact)" : "(MISMATCH)");
  if (!lossless) {
    return 1;
  }

  // --- 2. Per-request codecs on one connection. -----------------------------
  std::printf("\ncodec menu (same service, per-request codec)\n");
  for (const char* codec : {"zstd-1", "lz4", "snappy", "deflate-6"}) {
    svc::CallResult r = client.Compress(codec, payload);
    if (!r.status.ok()) {
      std::fprintf(stderr, "  %-10s %s\n", codec, r.status.ToString().c_str());
      return 1;
    }
    std::printf("  %-10s %zu -> %zu bytes (%.1f%%)  %.1f us\n", codec, payload.size(),
                r.output.size(), 100.0 * static_cast<double>(r.output.size()) / payload.size(),
                static_cast<double>(r.wall_ns) / 1e3);
  }

  // --- 3. Backpressure: a tiny ceiling versus eager clients. ----------------
  svc::ServerOptions tight = sopts;
  tight.admission.max_inflight = 2;
  svc::ServiceServer tight_server(tight);
  if (!tight_server.Start().ok()) {
    std::fprintf(stderr, "tight server failed to start\n");
    return 1;
  }
  svc::LoadGenOptions lopts;
  lopts.port = tight_server.port();
  lopts.clients = 8;
  lopts.requests_per_client = 16;
  lopts.payload_bytes = 64 * 1024;
  Result<svc::LoadGenReport> run = RunClosedLoop(lopts);
  if (!run.ok()) {
    std::fprintf(stderr, "loadgen: %s\n", run.status().ToString().c_str());
    return 1;
  }
  svc::LoadGenReport report = std::move(run).value();
  tight_server.Stop();
  svc::ServiceStats stats = tight_server.Snapshot();
  std::printf("\nbackpressure (ceiling 2, 8 closed-loop clients)\n");
  std::printf("  verified round trips  %llu of %llu (failures %llu)\n",
              static_cast<unsigned long long>(report.requests_ok),
              static_cast<unsigned long long>(lopts.clients * lopts.requests_per_client),
              static_cast<unsigned long long>(report.requests_failed));
  std::printf("  BUSY responses        %llu absorbed by client retries\n",
              static_cast<unsigned long long>(stats.requests_busy));
  std::printf("  server never queued: every admit went straight to the runtime\n");

  server.Stop();
  return report.requests_failed == 0 && report.verify_failures == 0 ? 0 : 1;
}
